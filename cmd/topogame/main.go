// Command topogame runs the reproduction experiments for "On the
// Topologies Formed by Selfish Peers" (Moscibroda, Schmid, Wattenhofer;
// PODC 2006) and executes declarative scenario specs and parameter
// sweeps through the same engine.
//
// Usage:
//
//	topogame list                 # show catalog entries
//	topogame run all              # run every experiment
//	topogame run e4-poa e5-nonash # run selected experiments
//	topogame run -quick -csv e1-upper
//	topogame spec -emit e4-poa    # print a catalog entry as Spec JSON
//	topogame spec workload.json   # run a declarative Spec (or "-": stdin)
//	topogame sweep grid.json      # run a Sweep grid (α × n × seed × γ ×
//	                              # churn-rate × repair)
//	topogame churn -rate 0.1      # churn survival: equilibrium under
//	                              # join/leave churn, selfish repairs
//	topogame certify -n 65536     # closed-form Nash certification of the
//	                              # star/chain at internet scale, verified
//	                              # == through the banded kernels
//
// Flags for run/spec/sweep:
//
//	-quick  reduced sizes (~10× faster; smoke testing)
//	-csv    emit CSV instead of aligned text
//	-json   emit JSON (machine-readable; run prints one array of
//	        table objects, spec/sweep one table object)
//	-seed N deterministic seed override (default: spec/flag default 1)
//	-par N  concurrent runners / grid points (default 0 = all cores);
//	        tables print in order and are bit-identical at any N
//	-cpuprofile f  write a pprof CPU profile of the run to f
//	-memprofile f  write a pprof heap profile (post-run, after GC) to f
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"selfishnet/internal/bestresponse"
	"selfishnet/internal/core"
	_ "selfishnet/internal/experiments" // register the 13 paper runners
	"selfishnet/internal/export"
	"selfishnet/internal/metric"
	"selfishnet/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topogame:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "list":
		for _, id := range scenario.IDs() {
			desc, err := scenario.Describe(id)
			if err != nil {
				return err
			}
			fmt.Printf("%-14s %s\n", id, desc)
		}
		return nil
	case "run":
		return runExperiments(args[1:])
	case "spec":
		return runSpec(args[1:])
	case "sweep":
		return runSweep(args[1:])
	case "churn":
		return runChurn(args[1:])
	case "certify":
		return runCertify(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// outputFlags holds the shared rendering/execution flags.
type outputFlags struct {
	quick      bool
	csv        bool
	json       bool
	seed       uint64
	par        int
	cpuprofile string
	memprofile string
}

func (o *outputFlags) register(fs *flag.FlagSet, seedDefault uint64) {
	fs.BoolVar(&o.quick, "quick", false, "reduced experiment sizes")
	fs.BoolVar(&o.csv, "csv", false, "emit CSV instead of text tables")
	fs.BoolVar(&o.json, "json", false, "emit JSON instead of text tables")
	fs.Uint64Var(&o.seed, "seed", seedDefault, "random seed")
	fs.IntVar(&o.par, "par", 0, "concurrent runners (0 = all cores, 1 = sequential)")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a pprof heap profile to this file")
}

// profiled runs work under the requested pprof profiles, so kernel
// investigations are profile-guided (`go tool pprof`) instead of
// requiring ad-hoc instrumentation patches. The CPU profile covers
// exactly the work function; the heap profile snapshots live objects
// after the run (post-GC), the steady-state arena footprint.
func (o *outputFlags) profiled(work func() error) error {
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if err := work(); err != nil {
		return err
	}
	if o.memprofile != "" {
		f, err := os.Create(o.memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // report live steady-state objects, not transients
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

func (o *outputFlags) write(tb *export.Table, w io.Writer) error {
	switch {
	case o.json:
		return tb.WriteJSON(w)
	case o.csv:
		return tb.WriteCSV(w)
	default:
		return tb.WriteText(w)
	}
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	var out outputFlags
	out.register(fs, scenario.DefaultSeed)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiments given; try 'topogame run all'")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = scenario.IDs()
	}
	params := scenario.Params{Quick: out.quick, Seed: out.seed}
	return out.profiled(func() error {
		// Runners execute concurrently, but tables come back in id order
		// and bit-identical to a sequential run, so the output is stable
		// across -par values.
		tables, err := scenario.RunAll(ids, params, out.par)
		if err != nil {
			return err
		}
		if out.json {
			// One JSON array for any id count, so stdout always parses as
			// a single document.
			return export.WriteJSONTables(os.Stdout, tables)
		}
		for i, tb := range tables {
			if err := out.write(tb, os.Stdout); err != nil {
				return err
			}
			if i+1 < len(ids) {
				fmt.Println()
			}
		}
		return nil
	})
}

func runSpec(args []string) error {
	fs := flag.NewFlagSet("spec", flag.ContinueOnError)
	var out outputFlags
	// Seed 0 = "defer to the spec's own seed".
	out.register(fs, 0)
	emit := fs.String("emit", "", "print the catalog spec with this id as JSON and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *emit != "" {
		if fs.NArg() > 0 {
			return fmt.Errorf("spec -emit takes no file argument (got %q)", fs.Arg(0))
		}
		var stray []string
		fs.Visit(func(f *flag.Flag) {
			if f.Name != "emit" {
				stray = append(stray, "-"+f.Name)
			}
		})
		if len(stray) > 0 {
			return fmt.Errorf("spec -emit only prints the catalog spec; %s would be ignored", strings.Join(stray, " "))
		}
		spec, err := scenario.CatalogSpec(*emit)
		if err != nil {
			return err
		}
		// Emit the canonical (normalized) form — the same shape the
		// engine executes, the golden tests pin and the topogamed result
		// cache hashes — so an emitted spec is stable under re-emission
		// and round-trips through `spec <file>` byte-identically.
		return spec.Normalize().WriteJSON(os.Stdout)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: topogame spec [flags] <file.json|->  (or -emit <id>)")
	}
	spec, err := readSpecArg(fs.Arg(0))
	if err != nil {
		return err
	}
	return out.profiled(func() error {
		tb, err := scenario.RunSpec(spec, scenario.Params{
			Quick: out.quick, Seed: out.seed, Parallelism: out.par,
		})
		if err != nil {
			return err
		}
		return out.write(tb, os.Stdout)
	})
}

func readSpecArg(path string) (scenario.Spec, error) {
	r, closer, err := openArg(path)
	if err != nil {
		return scenario.Spec{}, err
	}
	defer closer()
	return scenario.ReadSpec(r)
}

func openArg(path string) (io.Reader, func(), error) {
	if path == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// runChurn is the flag-driven front end for churn experiments: it
// builds a declarative spec (uniform metric, empty start, default
// dynamics) with a churn block, asks "does the equilibrium survive
// churn?" and prints one table with the churn measures. The same run is
// available declaratively via `topogame spec` with a "churn" block.
func runChurn(args []string) error {
	fs := flag.NewFlagSet("churn", flag.ContinueOnError)
	var out outputFlags
	out.register(fs, scenario.DefaultSeed)
	n := fs.Int("n", 24, "peer count")
	alpha := fs.Float64("alpha", 2, "link price α")
	rate := fs.Float64("rate", 0.1, "per-peer toggle rate (events/second)")
	duration := fs.Float64("duration", 5, "simulated churn horizon (seconds)")
	repair := fs.String("repair", "selfish", "repair strategy: selfish, nearest or none")
	family := fs.String("metric", "uniform", "metric family (sized families only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("churn takes no file argument (got %q); use 'topogame spec' with a churn block", fs.Arg(0))
	}
	spec := scenario.Spec{
		Name:   fmt.Sprintf("churn: %s n=%d α=%v rate=%v repair=%s", *family, *n, *alpha, *rate, *repair),
		Seed:   out.seed,
		Metric: scenario.MetricSpec{Family: *family, N: *n},
		Game:   scenario.GameSpec{Alpha: *alpha},
		Churn: scenario.ChurnSpec{
			Rate:     *rate,
			Duration: *duration,
			Repair:   *repair,
		},
		Measures: []string{
			"converged", "links", "social-cost",
			"churn-rate", "churn-repair", "churn-events",
			"restabilize-mean", "restabilize-max", "overshoot", "tail-stable",
		},
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	return out.profiled(func() error {
		tb, err := scenario.RunSpec(spec, scenario.Params{
			Quick: out.quick, Parallelism: out.par,
		})
		if err != nil {
			return err
		}
		return out.write(tb, os.Stdout)
	})
}

// runCertify decides Nash stability of a canonical topology (the
// paper's center-sponsored star or the chain) at internet scale: the
// verdict comes from the O(n) closed-form certification
// (core.CertifyStar / core.CertifyChain), and every closed-form
// quantity is then re-derived through the real evaluation machinery —
// the banded multi-source kernel for the social cost, the streamed
// single-source evaluator for per-peer costs and the witness deviation
// — and compared with == (no tolerances). No dense distance matrix or
// n² slab is ever materialized, so n = 65536 fits in well under 2 GiB.
func runCertify(args []string) error {
	fs := flag.NewFlagSet("certify", flag.ContinueOnError)
	var out outputFlags
	out.register(fs, scenario.DefaultSeed)
	topology := fs.String("topology", "star", "topology to certify: star or chain")
	n := fs.Int("n", 65536, "peer count")
	alpha := fs.Float64("alpha", 2, "link price α")
	band := fs.Int("band", 64, "resident source rows in the banded social-cost check")
	samples := fs.Int("samples", 0, "cross-check with the sampled estimator over this many sources (0 = skip)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("certify takes no file argument (got %q)", fs.Arg(0))
	}

	return out.profiled(func() error {
		var (
			cert core.Certification
			p    core.Profile
			err  error
		)
		switch *topology {
		case "star":
			if cert, err = core.CertifyStar(*n, *alpha, bestresponse.Tolerance); err == nil {
				p, err = core.StarProfile(*n)
			}
		case "chain":
			if cert, err = core.CertifyChain(*n, *alpha, bestresponse.Tolerance); err == nil {
				p, err = core.ChainProfile(*n)
			}
		default:
			return fmt.Errorf("unknown topology %q (want star or chain)", *topology)
		}
		if err != nil {
			return err
		}

		space, err := metric.UniformImplicit(*n)
		if err != nil {
			return err
		}
		inst, err := core.NewInstance(space, *alpha)
		if err != nil {
			return err
		}
		ev := core.NewEvaluator(inst)

		// The banded social cost must reproduce the closed form exactly —
		// this walks every one of the n² pairs through the multi-source
		// kernel with only `band` rows resident.
		banded, err := ev.SocialCostBanded(p, *band)
		if err != nil {
			return err
		}
		if banded != cert.Social {
			return fmt.Errorf("banded social cost %+v != closed form %+v", banded, cert.Social)
		}

		// Spot-check per-peer closed forms through the streamed evaluator,
		// and replay the witness deviation when unstable.
		peerEval := core.StarPeerEval
		if *topology == "chain" {
			peerEval = core.ChainPeerEval
		}
		for _, i := range []int{0, 1, *n / 2, *n - 1} {
			if got, want := ev.PeerEvalStreamed(p, i), peerEval(*n, *alpha, i); got != want {
				return fmt.Errorf("peer %d eval %+v != closed form %+v", i, got, want)
			}
		}
		if !cert.Stable {
			if got := ev.DeviationEvalStreamed(p, cert.Deviator, cert.Witness); got != cert.WitnessEval {
				return fmt.Errorf("witness eval %+v != closed form %+v", got, cert.WitnessEval)
			}
		}

		tb := &export.Table{
			Title: fmt.Sprintf("certify: %s n=%d α=%v", *topology, *n, *alpha),
			Headers: []string{"topology", "n", "alpha", "band", "nash", "social-cost",
				"best-gain", "deviator", "est-social", "est-social-ci"},
		}
		estV, estCI := "-", "-"
		if *samples > 0 {
			est, err := ev.EstimateSocialCost(p, *samples, out.seed)
			if err != nil {
				return err
			}
			estV, estCI = export.Num(est.Value), export.Num(est.CI)
		}
		deviator := "-"
		if !cert.Stable {
			deviator = export.Int(cert.Deviator)
		}
		tb.Rows = append(tb.Rows, []string{
			*topology, export.Int(*n), export.Num(*alpha), export.Int(*band),
			fmt.Sprintf("%v", cert.Stable), export.Num(cert.Social.Total()),
			export.Num(cert.BestGain), deviator, estV, estCI,
		})
		tb.Notes = append(tb.Notes,
			"social-cost: closed form, reproduced == by the banded multi-source kernel",
			"per-peer closed forms and the witness deviation (when unstable) verified == through the streamed evaluator")
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		fmt.Fprintf(os.Stderr, "topogame certify: heap %.1f MiB (sys %.1f MiB), no dense matrix\n",
			float64(ms.HeapAlloc)/(1<<20), float64(ms.Sys)/(1<<20))
		return out.write(tb, os.Stdout)
	})
}

func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var out outputFlags
	out.register(fs, 0)
	keepGoing := fs.Bool("keep-going", false, "do not abort on point failures; render failed rows as placeholders and report them")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: topogame sweep [flags] <file.json|->")
	}
	r, closer, err := openArg(fs.Arg(0))
	if err != nil {
		return err
	}
	defer closer()
	sw, err := scenario.ReadSweep(r)
	if err != nil {
		return err
	}
	if out.seed != 0 {
		// The seed axis owns per-point seeding; a -seed override replaces
		// the base seed (and therefore a default single-point seed axis).
		sw.Base.Seed = out.seed
		if len(sw.Seeds) > 0 {
			return fmt.Errorf("sweep file has a seeds axis; -seed would be ambiguous")
		}
	}
	return out.profiled(func() error {
		if *keepGoing {
			// Keep-going: point failures become placeholder rows plus a
			// structured report instead of aborting the whole grid. The
			// table (healthy rows byte-identical to a clean run) still
			// goes to stdout; the failure report and the non-zero exit
			// make the partial-ness impossible to miss in scripts.
			tb, failed, err := sw.RunPartialContext(context.Background(), scenario.Params{Quick: out.quick}, out.par, nil)
			if err != nil {
				return err
			}
			if werr := out.write(tb, os.Stdout); werr != nil {
				return werr
			}
			if len(failed) == 0 {
				return nil
			}
			for _, f := range failed {
				fmt.Fprintf(os.Stderr, "topogame sweep: point %d failed: %s\n", f.Index, f.Error)
			}
			return fmt.Errorf("sweep: %d of %d point(s) failed; their rows read %q", len(failed), len(sw.Points()), scenario.FailedCell)
		}
		tb, err := sw.Run(scenario.Params{Quick: out.quick}, out.par)
		if err != nil {
			return err
		}
		return out.write(tb, os.Stdout)
	})
}

func usage() {
	fmt.Fprint(os.Stderr, `topogame — experiments for "On the Topologies Formed by Selfish Peers"

commands:
  list                     list catalog entries with descriptions
  run [flags] <ids|all>    run experiments and print tables
  spec [flags] <file|->    run a declarative Spec JSON (see -emit)
  spec -emit <id>          print a catalog entry as Spec JSON
  sweep [flags] <file|->   run a Sweep JSON grid (α × n × seed × γ ×
                           churn-rate × repair); -keep-going renders
                           failed points as placeholder rows instead
                           of aborting
  churn [flags]            run a churn survival experiment (equilibrium
                           under join/leave churn; -n -alpha -rate
                           -duration -repair -metric)
  certify [flags]          certify star/chain Nash stability from the
                           paper's closed forms and verify them ==
                           through the banded kernels, no dense matrix
                           (-topology -n -alpha -band -samples)
  help                     show this help

flags (run/spec/sweep):
  -quick      reduced sizes (smoke test)
  -csv        CSV output
  -json       JSON output (machine-readable)
  -seed N     deterministic seed override
  -par N      concurrent runners / grid points (default 0 = all cores;
              output is identical at any value)
  -cpuprofile f  write a pprof CPU profile of the run to f
  -memprofile f  write a pprof heap profile (post-run, after GC) to f
`)
}
