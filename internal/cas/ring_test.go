package cas

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = "point/" + h(fmt.Sprint(i))
	}
	return keys
}

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 64)
	b := NewRing([]string{"n3", "n1", "n2", "n2"}, 64) // shuffled + duplicate
	for _, k := range ringKeys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("placement depends on node input order: %q → %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
	want := fmt.Sprint([]string{"n1", "n2", "n3"})
	if fmt.Sprint(a.Nodes()) != want || fmt.Sprint(b.Nodes()) != want {
		t.Fatalf("Nodes() = %v / %v, want %s", a.Nodes(), b.Nodes(), want)
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	r := NewRing(nodes, 0)
	counts := make(map[string]int)
	for _, k := range ringKeys(4000) {
		counts[r.Owner(k)]++
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("node %s owns nothing: %v", n, counts)
		}
		// With 128 virtual nodes the load ratio stays well under 2×.
		if counts[n] > 2000 {
			t.Fatalf("node %s owns %d of 4000 keys — ring badly unbalanced: %v", n, counts[n], counts)
		}
	}
}

// TestRingMinimalMovement: adding one node must only move keys onto
// the new node — no key changes hands between surviving nodes.
func TestRingMinimalMovement(t *testing.T) {
	before := NewRing([]string{"n1", "n2", "n3"}, 0)
	after := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	keys := ringKeys(2000)
	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was != is {
			if is != "n4" {
				t.Fatalf("key %q moved %s → %s, not onto the new node", k, was, is)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("new node took no keys")
	}
	// Expected share is 1/4; anything past half the keyspace means the
	// ring is not doing consistent hashing.
	if moved > len(keys)/2 {
		t.Fatalf("adding one node moved %d/%d keys", moved, len(keys))
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if owner := NewRing(nil, 0).Owner("point/" + h("a")); owner != "" {
		t.Fatalf("empty ring returned owner %q", owner)
	}
	solo := NewRing([]string{"only"}, 0)
	for _, k := range ringKeys(50) {
		if solo.Owner(k) != "only" {
			t.Fatal("single-node ring routed a key elsewhere")
		}
	}
}
