package construct

import (
	"fmt"
	"math"

	"selfishnet/internal/core"
	"selfishnet/internal/metric"
)

// Cluster names the five peer groups of the Figure 2 instance I_k.
type Cluster int

// The five clusters: Π1 and Π2 are the bottom clusters, Πa, Πb, Πc the
// top clusters.
const (
	Pi1 Cluster = iota + 1
	Pi2
	PiA
	PiB
	PiC
	numClusters = 5
)

// String returns the paper's cluster name.
func (c Cluster) String() string {
	switch c {
	case Pi1:
		return "Π1"
	case Pi2:
		return "Π2"
	case PiA:
		return "Πa"
	case PiB:
		return "Πb"
	case PiC:
		return "Πc"
	default:
		return fmt.Sprintf("Cluster(%d)", int(c))
	}
}

// clusterOrder fixes peer index layout: peers of clusterOrder[c] occupy
// indices [c*k, (c+1)*k).
var clusterOrder = [numClusters]Cluster{Pi1, Pi2, PiA, PiB, PiC}

// IkParams parameterizes the Figure 2 geometry. The workshop paper gives
// only a schematic with constants δ_1a = 0.04, δ_ab = 0.14, inter-cluster
// distances built from 1, 1±δ, 2±δ and cluster diameter ε/n; the exact
// coordinates and the formal proof are omitted. We therefore expose the
// cluster centers directly and ship defaults (DefaultIkParams) found by
// automated search that certify the paper's property (see FindNoNash).
type IkParams struct {
	// Centers maps each cluster to its 2-D center position.
	Centers map[Cluster][2]float64
	// Eps is the total cluster diameter measured in units of 1/n (the
	// paper's ε/n spacing): cluster peers spread over Eps/n.
	Eps float64
	// AlphaPerK is the α multiplier: α = AlphaPerK · k (the paper uses
	// 0.6k).
	AlphaPerK float64
}

// DefaultIkParams returns the shipped parameterization of I_k, found by
// automated search (the workshop paper omits the exact coordinates).
// The layout matches the paper's schematic qualitatively — Π1, Π2 at the
// bottom roughly unit distance apart, Πa upper-left, Πb top-middle, Πc
// upper-right — and reproduces the paper's claims exactly:
//
//   - k = 1: exhaustive enumeration of all 2^20 strategy profiles finds
//     NO pure Nash equilibrium (Theorem 5.1 certificate);
//   - the six Figure 3 candidates, with all other peers settled to their
//     exact best responses, transition 1→3, 3→4, 4→2, 2→1 (the paper's
//     infinite loop), with 5→3 and 6→2 feeding into the cycle;
//   - best-response dynamics cycle forever from random starting
//     profiles.
//
// The α multiplier is 0.947k rather than the paper's 0.6k because the
// searched geometry differs from the (unpublished) original; the
// qualitative structure of the oscillation is what Theorem 5.1 asserts.
func DefaultIkParams() IkParams {
	return IkParams{
		Centers: map[Cluster][2]float64{
			Pi1: {0, 0},
			Pi2: {1.0897380701283743, -0.29877411771567863},
			PiA: {-0.6054405543330078, 1.0155530976122948},
			PiB: {0.8056117976478322, 1.2838994535956236},
			PiC: {2.1984022184350342, 1.0261561793611764},
		},
		Eps:       0.01,
		AlphaPerK: 0.946911,
	}
}

// Ik is a realized Figure 2 instance.
type Ik struct {
	Instance *core.Instance
	// K is the per-cluster peer count (n = 5k).
	K int
	// Params echoes the geometry used.
	Params IkParams
}

// NewIk builds the instance I_k with k peers per cluster using the given
// parameters (α = AlphaPerK·k).
func NewIk(k int, params IkParams) (*Ik, error) {
	if k < 1 {
		return nil, fmt.Errorf("construct: I_k needs k ≥ 1, got %d", k)
	}
	if params.AlphaPerK <= 0 {
		return nil, fmt.Errorf("construct: AlphaPerK = %v, want > 0", params.AlphaPerK)
	}
	if params.Eps <= 0 {
		return nil, fmt.Errorf("construct: Eps = %v, want > 0", params.Eps)
	}
	n := numClusters * k
	specs := make([]metric.ClusterSpec, 0, numClusters)
	for _, c := range clusterOrder {
		center, ok := params.Centers[c]
		if !ok {
			return nil, fmt.Errorf("construct: missing center for cluster %s", c)
		}
		specs = append(specs, metric.ClusterSpec{
			Center:   []float64{center[0], center[1]},
			Count:    k,
			Diameter: params.Eps / float64(n),
		})
	}
	space, err := metric.Clustered(specs)
	if err != nil {
		return nil, err
	}
	inst, err := core.NewInstance(space, params.AlphaPerK*float64(k))
	if err != nil {
		return nil, err
	}
	return &Ik{Instance: inst, K: k, Params: params}, nil
}

// PeerOf returns the index of the m-th peer (0 ≤ m < k) of the cluster.
func (ik *Ik) PeerOf(c Cluster, m int) (int, error) {
	if m < 0 || m >= ik.K {
		return 0, fmt.Errorf("construct: peer offset %d out of range [0,%d)", m, ik.K)
	}
	for ci, cc := range clusterOrder {
		if cc == c {
			return ci*ik.K + m, nil
		}
	}
	return 0, fmt.Errorf("construct: unknown cluster %v", c)
}

// ClusterOf returns which cluster a peer index belongs to.
func (ik *Ik) ClusterOf(peer int) (Cluster, error) {
	n := numClusters * ik.K
	if peer < 0 || peer >= n {
		return 0, fmt.Errorf("construct: peer %d out of range [0,%d)", peer, n)
	}
	return clusterOrder[peer/ik.K], nil
}

// Dist returns the distance between the first peers of two clusters
// (≈ the inter-cluster distance; cluster diameters are ε/n).
func (ik *Ik) Dist(a, b Cluster) float64 {
	pa, _ := ik.PeerOf(a, 0)
	pb, _ := ik.PeerOf(b, 0)
	return ik.Instance.Distance(pa, pb)
}

// ClusterLink describes one directed inter-cluster link at cluster
// granularity: the lead peer of From links to the lead peer of To.
type ClusterLink struct {
	From, To Cluster
}

// Realize builds a concrete profile from cluster-level structure:
// every cluster's peers form a bidirectional intra-cluster chain (the
// paper's Nash structure keeps clusters internally connected), and each
// requested inter-cluster link is realized between the lead peers.
func (ik *Ik) Realize(links []ClusterLink) (core.Profile, error) {
	n := numClusters * ik.K
	p := core.NewProfile(n)
	for ci := range clusterOrder {
		base := ci * ik.K
		for m := 0; m+1 < ik.K; m++ {
			if err := p.AddLink(base+m, base+m+1); err != nil {
				return core.Profile{}, err
			}
			if err := p.AddLink(base+m+1, base+m); err != nil {
				return core.Profile{}, err
			}
		}
	}
	for _, l := range links {
		from, err := ik.PeerOf(l.From, 0)
		if err != nil {
			return core.Profile{}, err
		}
		to, err := ik.PeerOf(l.To, 0)
		if err != nil {
			return core.Profile{}, err
		}
		if err := p.AddLink(from, to); err != nil {
			return core.Profile{}, err
		}
	}
	return p, nil
}

// InterClusterLinks projects a profile to cluster granularity: every
// directed link between peers of different clusters becomes a
// ClusterLink (deduplicated), ignoring intra-cluster links.
func (ik *Ik) InterClusterLinks(p core.Profile) ([]ClusterLink, error) {
	seen := make(map[ClusterLink]bool)
	var out []ClusterLink
	for _, l := range p.Links() {
		cf, err := ik.ClusterOf(l[0])
		if err != nil {
			return nil, err
		}
		ct, err := ik.ClusterOf(l[1])
		if err != nil {
			return nil, err
		}
		if cf == ct {
			continue
		}
		cl := ClusterLink{From: cf, To: ct}
		if !seen[cl] {
			seen[cl] = true
			out = append(out, cl)
		}
	}
	return out, nil
}

// Validate2D checks that the parameter centers respect the constraints
// the paper states for Figure 2: bottom clusters at distance ~1, tops
// spread near distance 2, all inter-cluster distances positive. It
// returns a descriptive error when the layout is degenerate.
func (params IkParams) Validate2D() error {
	for _, c := range clusterOrder {
		if _, ok := params.Centers[c]; !ok {
			return fmt.Errorf("construct: missing center for %s", c)
		}
	}
	for i, a := range clusterOrder {
		for _, b := range clusterOrder[i+1:] {
			ca, cb := params.Centers[a], params.Centers[b]
			d := math.Hypot(ca[0]-cb[0], ca[1]-cb[1])
			if d <= 0 {
				return fmt.Errorf("construct: clusters %s and %s coincide", a, b)
			}
		}
	}
	return nil
}
