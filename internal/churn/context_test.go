package churn

import (
	"context"
	"errors"
	"testing"

	"selfishnet/internal/rng"
)

// TestRunContextUnfiredByteIdentical is the differential obligation of
// deadline propagation: a context that never fires must leave the churn
// result byte-identical to Run (the == comparisons in resultsEqual).
func TestRunContextUnfiredByteIdentical(t *testing.T) {
	r := rng.New(211)
	inst := buildChurnInstance(t, r, churnCase{n: 10})
	cfg := Config{
		Instance: inst,
		Start:    nearestStart(t, inst),
		Rate:     0.2,
		Duration: 3,
		Seed:     999,
	}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, got, want, "RunContext vs Run")
	if want.Events == 0 {
		t.Fatal("run produced no churn events; rate/duration too small for the test")
	}
}

// TestRunContextCancelled pins the cancellation surface: a pre-fired
// context aborts before the first event and returns ctx.Err() verbatim.
func TestRunContextCancelled(t *testing.T) {
	r := rng.New(223)
	inst := buildChurnInstance(t, r, churnCase{n: 8})
	cfg := Config{
		Instance: inst,
		Start:    nearestStart(t, inst),
		Rate:     0.2,
		Duration: 3,
		Seed:     7,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
