package core

import (
	"math"
	"math/bits"
)

// This file holds the metric-specialized SSSP kernel family. Every
// kernel computes the exact same distances — bit for bit — as the
// indexed-heap Dijkstra in evaluate.go; they differ only in how much
// hardware they waste getting there. Dispatch is decided once per
// Instance (see classifyKernel): the metric class and the congestion
// setting are construction-time constants, so the per-call dispatch is
// a single switch on a cached tag.
//
//   - kernelBFS: uniform metrics (every direct distance equals one unit
//     u, γ = 0). Every traversal arc then weighs exactly u, so the
//     overlay distance is a pure function of hop count and SSSP is a
//     unit-weight BFS. The frontier is swept word-parallel over bitset
//     adjacency rows: one 64-bit OR advances 64 candidate arcs at once,
//     so an n-source all-pairs pass costs O(n²·⌈n/64⌉) word ops instead
//     of n heap Dijkstras. Distances are reconstructed from a hop-count
//     table that replays the heap's left-fold IEEE addition (hopDist[h]
//     = hopDist[h-1] + u), which is exactly the value Dijkstra assigns
//     a vertex settled at hop h — all shortest paths to it have h arcs
//     and repeated addition of a constant is deterministic — so the BFS
//     is bit-identical to the heap even for non-integer units.
//
//   - kernelDial: small-integer metrics (every distance a positive
//     integer ≤ metric.MaxSmallIntWeight, γ = 0). All path sums are
//     then exact small integers in float64, so every settling order
//     reaches the identical bits and a Dial bucket queue (circular
//     array of span+1 buckets, O(1) push/pop, no sift traffic) replaces
//     the binary heap.
//
//   - kernelHeap: everything else, including every γ > 0 regime (the
//     congestion scale factors destroy both structures).

// kernelKind tags the SSSP kernel an instance dispatches to.
type kernelKind uint8

const (
	kernelHeap kernelKind = iota
	kernelBFS
	kernelDial
)

// ValidKernelName reports whether name is a value WithKernel accepts.
// The empty string and "auto" both mean metric-class dispatch. This is
// the single source of truth for kernel names; layers that validate
// before construction (e.g. scenario specs) consult it instead of
// hardcoding the list.
func ValidKernelName(name string) bool {
	switch name {
	case "", "auto", "heap", "bfs", "dial":
		return true
	}
	return false
}

// String names the kernel as reported by Instance.Kernel and accepted
// by WithKernel.
func (k kernelKind) String() string {
	switch k {
	case kernelBFS:
		return "bfs"
	case kernelDial:
		return "dial"
	default:
		return "heap"
	}
}

// bfsWords returns the bitset row width (in 64-bit words) for n peers.
func bfsWords(n int) int { return (n + 63) / 64 }

// bfsUnitSSSP runs the word-parallel unit-weight BFS from src and
// writes distances into d (len n). adj is the combined traversal
// adjacency as n bitset rows of w words each — bit v of row u set iff
// the arc u→v is traversable (for undirected instances the reverse
// arcs are pre-ORed into the rows, which is valid because symmetry
// makes every traversal arc weigh the same unit). hopDist[h] must hold
// the IEEE left-fold of h unit addends, with len(hopDist) ≥ n+1.
// front, next and visited are caller-owned scratch of w words.
func bfsUnitSSSP(d []float64, adj []uint64, w, src int, hopDist []float64, front, next, visited []uint64) {
	for i := range d {
		d[i] = math.Inf(1)
	}
	d[src] = 0
	for i := 0; i < w; i++ {
		front[i] = 0
		visited[i] = 0
	}
	front[src>>6] = 1 << uint(src&63)
	visited[src>>6] = front[src>>6]
	for hop := 1; ; hop++ {
		for i := 0; i < w; i++ {
			next[i] = 0
		}
		// Union the adjacency rows of every frontier vertex: each word OR
		// advances up to 64 arcs.
		for wi := 0; wi < w; wi++ {
			fw := front[wi]
			base := wi << 6
			for fw != 0 {
				u := base + bits.TrailingZeros64(fw)
				fw &= fw - 1
				row := adj[u*w : u*w+w]
				for k := range row {
					next[k] |= row[k]
				}
			}
		}
		// Strip already-settled vertices, assign the hop-h distance to the
		// fresh ones, and stop when the wave dies out.
		hd := hopDist[hop]
		any := false
		for wi := 0; wi < w; wi++ {
			nw := next[wi] &^ visited[wi]
			next[wi] = nw
			if nw == 0 {
				continue
			}
			any = true
			visited[wi] |= nw
			base := wi << 6
			for nw != 0 {
				d[base+bits.TrailingZeros64(nw)] = hd
				nw &= nw - 1
			}
		}
		if !any {
			return
		}
		front, next = next, front
	}
}

// fillBitRows writes the out-arcs of a CSR adjacency into bitset rows
// (w words per row), the shape bfsUnitSSSP consumes. Used by DynEval to
// reuse the BFS kernel over its combined traversal CSR.
func fillBitRows(rows []uint64, n, w int, head, to []int32) {
	for i := range rows {
		rows[i] = 0
	}
	for u := 0; u < n; u++ {
		row := rows[u*w : u*w+w]
		for k := head[u]; k < head[u+1]; k++ {
			v := to[k]
			row[v>>6] |= 1 << uint(v&63)
		}
	}
}

// dialQueue is the reusable bucket storage of the Dial kernel: one
// slice of pending vertices per distance residue modulo span+1. Buckets
// are drained back to length zero by every run, so reuse needs no
// clearing beyond the slice header reset in ensure.
type dialQueue struct {
	buckets [][]int32
}

// ensure sizes the queue for a weight span (bucket count span+1),
// keeping per-bucket capacity across runs.
func (q *dialQueue) ensure(span int) {
	if need := span + 1; len(q.buckets) < need {
		old := q.buckets
		q.buckets = make([][]int32, need)
		copy(q.buckets, old)
	}
}

// dialSSSP runs Dial's bucket-queue Dijkstra from src over a CSR
// adjacency whose weights are all positive integers ≤ span, writing
// distances into d. rev*, when non-nil, is a second CSR relaxed
// alongside the first (the undirected reverse index). Because every
// path sum is an exact integer, the computed fixpoint is bit-identical
// to the heap's regardless of settling order.
//
// Pending distances always lie in [cur, cur+span], so a circular array
// of span+1 buckets indexes them without collision; a popped vertex
// whose stored distance no longer matches the bucket's distance is a
// stale entry superseded by an earlier improvement and is skipped.
func dialSSSP(d []float64, q *dialQueue, span, src int, fwdHead, fwdTo []int32, fwdW []float64, revHead, revTo []int32, revW []float64) {
	for i := range d {
		d[i] = math.Inf(1)
	}
	d[src] = 0
	q.ensure(span)
	nb := span + 1
	buckets := q.buckets
	buckets[0] = append(buckets[0][:0], int32(src))
	pending := 1
	for cur := 0; pending > 0; cur++ {
		b := cur % nb
		bk := buckets[b]
		if len(bk) == 0 {
			continue
		}
		// Arcs weigh ≥ 1, so relaxations from distance cur land strictly
		// beyond cur and never refill this bucket while it drains.
		du := float64(cur)
		for len(bk) > 0 {
			u := bk[len(bk)-1]
			bk = bk[:len(bk)-1]
			pending--
			if d[u] != du {
				continue // stale: improved after this entry was pushed
			}
			for k := fwdHead[u]; k < fwdHead[u+1]; k++ {
				v := fwdTo[k]
				if nd := du + fwdW[k]; nd < d[v] {
					d[v] = nd
					nbk := int(nd) % nb
					buckets[nbk] = append(buckets[nbk], v)
					pending++
				}
			}
			if revHead != nil {
				for k := revHead[u]; k < revHead[u+1]; k++ {
					v := revTo[k]
					if nd := du + revW[k]; nd < d[v] {
						d[v] = nd
						nbk := int(nd) % nb
						buckets[nbk] = append(buckets[nbk], v)
						pending++
					}
				}
			}
		}
		buckets[b] = bk
	}
}
