package fabric

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selfishnet/internal/scenario"
)

// fastRetry keeps test-side retries near-instant.
var fastRetry = Backoff{Attempts: 3, Base: time.Millisecond, Cap: 2 * time.Millisecond}

// TestHTTPClient410OnEveryVerb: a coordinator answering 410 Gone maps
// to ErrUnknownWorker on all four client verbs — the signal the worker
// loop re-registers on.
func TestHTTPClient410OnEveryVerb(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusGone)
	}))
	defer ts.Close()
	c := &HTTPClient{Base: ts.URL, Retry: fastRetry}
	if _, err := c.Register("probe"); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("Register: %v, want ErrUnknownWorker", err)
	}
	if err := c.Heartbeat("w-1"); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("Heartbeat: %v, want ErrUnknownWorker", err)
	}
	if _, err := c.Next("w-1"); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("Next: %v, want ErrUnknownWorker", err)
	}
	if err := c.Complete("w-1", "s-1", ShardResult{}); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("Complete: %v, want ErrUnknownWorker", err)
	}
}

// TestHTTPClientMalformedJSON: a 200 with a garbage body is an error,
// not a zero-value shard or registration.
func TestHTTPClientMalformedJSON(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "{not json")
	}))
	defer ts.Close()
	c := &HTTPClient{Base: ts.URL, Retry: fastRetry}
	if _, err := c.Register("probe"); err == nil {
		t.Error("Register decoded a malformed body without error")
	}
	if _, err := c.Next("w-1"); err == nil {
		t.Error("Next decoded a malformed body without error")
	}
}

// TestHTTPClientOversizedErrorBody: error bodies are truncated at 4096
// bytes, so a misbehaving coordinator cannot balloon worker logs or
// memory.
func TestHTTPClientOversizedErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, strings.Repeat("x", 64<<10))
	}))
	defer ts.Close()
	c := &HTTPClient{Base: ts.URL, Retry: fastRetry}
	err := c.Heartbeat("w-1")
	if err == nil {
		t.Fatal("500 response reported no error")
	}
	if n := len(err.Error()); n > 4096+200 {
		t.Errorf("error message is %d bytes; the body was not truncated at 4096", n)
	}
}

// flakyTransport fails the first failures round-trips with a transport
// error, then answers 204 itself.
type flakyTransport struct {
	calls    atomic.Int64
	failures int64
}

func (rt *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if rt.calls.Add(1) <= rt.failures {
		return nil, errors.New("connection reset by peer")
	}
	return &http.Response{
		StatusCode: http.StatusNoContent,
		Body:       http.NoBody,
		Header:     make(http.Header),
		Request:    req,
	}, nil
}

// TestHTTPClientRetriesTransportErrors: transport failures are retried
// under the backoff schedule and succeed once the network heals.
func TestHTTPClientRetriesTransportErrors(t *testing.T) {
	rt := &flakyTransport{failures: 2}
	c := &HTTPClient{
		Base:  "http://fabric.invalid",
		HTTP:  &http.Client{Transport: rt},
		Retry: fastRetry,
	}
	if err := c.Heartbeat("w-1"); err != nil {
		t.Fatalf("heartbeat failed despite retries: %v", err)
	}
	if got := rt.calls.Load(); got != 3 {
		t.Errorf("transport saw %d attempts, want 3 (2 failures + success)", got)
	}

	// A fully dead network exhausts the budget and surfaces the last
	// transport error.
	rt2 := &flakyTransport{failures: 1 << 30}
	c2 := &HTTPClient{Base: "http://fabric.invalid", HTTP: &http.Client{Transport: rt2}, Retry: fastRetry}
	if err := c2.Heartbeat("w-1"); err == nil {
		t.Error("dead transport reported success")
	}
	if got := rt2.calls.Load(); got != 3 {
		t.Errorf("dead transport saw %d attempts, want exactly the retry budget (3)", got)
	}
}

// TestHTTPClientNoRetryOnHTTPStatus: an HTTP status — even an error
// status — is the coordinator speaking and is never retried.
func TestHTTPClientNoRetryOnHTTPStatus(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := &HTTPClient{Base: ts.URL, Retry: fastRetry}
	if err := c.Heartbeat("w-1"); err == nil {
		t.Fatal("500 response reported no error")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests for a 500, want 1 (no status retries)", got)
	}
}

// TestHTTPClientPerAttemptTimeout: a hung coordinator is cut off by
// the per-attempt timeout; every attempt gets its own budget.
func TestHTTPClientPerAttemptTimeout(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	defer close(release)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	c := &HTTPClient{
		Base:    ts.URL,
		Timeout: 25 * time.Millisecond,
		Retry:   Backoff{Attempts: 2, Base: time.Millisecond, Cap: 2 * time.Millisecond},
	}
	start := time.Now()
	if err := c.Heartbeat("w-1"); err == nil {
		t.Fatal("hung coordinator reported success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v; the per-attempt bound did not engage", elapsed)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d attempts, want 2 (timeouts are transport errors and retry)", got)
	}
}

// TestRetryDelayDeterministicAndBounded: the jittered backoff schedule
// is reproducible from its seed and stays inside [base/2, cap].
func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	mk := func(seed uint64) *HTTPClient {
		return &HTTPClient{Retry: Backoff{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Seed: seed}}
	}
	a, b := mk(9), mk(9)
	for try := 1; try <= 8; try++ {
		da, db := a.retryDelay(try), b.retryDelay(try)
		if da != db {
			t.Fatalf("try %d: same seed gave %v vs %v", try, da, db)
		}
		if da < 25*time.Millisecond || da > 2*time.Second {
			t.Errorf("try %d: delay %v outside [base/2, cap]", try, da)
		}
	}
	// Deep tries saturate at the cap (scaled by jitter), never overflow.
	if d := mk(9).retryDelay(60); d <= 0 || d > 2*time.Second {
		t.Errorf("saturated delay %v outside (0, cap]", d)
	}
}

// TestWorkerRunSurvivesConnectionRefused: a worker pointed at a dead
// coordinator keeps polling until its context ends — it never gives
// up, never panics.
func TestWorkerRunSurvivesConnectionRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // now nothing listens there

	var mu sync.Mutex
	attempts := 0
	w := &Worker{
		Client: &HTTPClient{Base: "http://" + addr, Timeout: 50 * time.Millisecond, Retry: Backoff{Attempts: 1}},
		Poll:   5 * time.Millisecond,
		Logf: func(format string, args ...any) {
			if strings.Contains(format, "register") {
				mu.Lock()
				attempts++
				mu.Unlock()
			}
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := w.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v, want the context error", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts < 2 {
		t.Errorf("worker attempted registration %d time(s) against a dead coordinator, want repeated polling", attempts)
	}
}

// scriptedClient is a fabric.Client with programmable heartbeat
// behavior for worker-loop tests.
type scriptedClient struct {
	mu        sync.Mutex
	registers int
	hbErr     error
}

func (c *scriptedClient) Register(name string) (WorkerInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.registers++
	return WorkerInfo{ID: fmt.Sprintf("w-%d", c.registers), Lease: 30 * time.Millisecond}, nil
}

func (c *scriptedClient) Heartbeat(workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hbErr
}

func (c *scriptedClient) Next(workerID string) (*Shard, error) { return nil, nil }

func (c *scriptedClient) Complete(workerID, shardID string, res ShardResult) error { return nil }

func (c *scriptedClient) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.registers
}

// TestWorkerReregistersAfterHeartbeatLoss: three consecutive heartbeat
// transport failures cancel the serve loop and re-register immediately
// instead of idling until Next discovers the lapsed lease.
func TestWorkerReregistersAfterHeartbeatLoss(t *testing.T) {
	sc := &scriptedClient{hbErr: errors.New("network down")}
	w := &Worker{Client: sc, Poll: 5 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
	defer cancel()
	_ = w.Run(ctx)
	// Lease 30ms → beats every 10ms → ~30ms to burn the 3-failure
	// limit; 600ms must re-register several times.
	if got := sc.count(); got < 3 {
		t.Errorf("worker registered %d time(s) under total heartbeat loss, want repeated re-registration", got)
	}
}

// TestWorkerReregistersOn410Heartbeat: a heartbeat 410 (the
// coordinator explicitly forgot us) re-registers without burning the
// 3-failure limit first.
func TestWorkerReregistersOn410Heartbeat(t *testing.T) {
	sc := &scriptedClient{hbErr: ErrUnknownWorker}
	w := &Worker{Client: sc, Poll: 5 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_ = w.Run(ctx)
	if got := sc.count(); got < 3 {
		t.Errorf("worker registered %d time(s) under heartbeat 410s, want immediate re-registration", got)
	}
}

// TestExecuteRecoversPanics: an injected panic in point execution is
// recovered into a ShardResult error naming the point — the shard
// attempt dies, the worker process does not.
func TestExecuteRecoversPanics(t *testing.T) {
	pts, err := testSweep().EnumeratePoints()
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{
		Parallelism: 1,
		RunPoint: func(ctx context.Context, spec scenario.Spec, measures []string, parallelism int) (scenario.PointResult, error) {
			panic("kaboom")
		},
	}
	shard := &Shard{ID: "s-1", Points: pts[:2], Measures: testSweep().Measures()}
	res := w.execute(context.Background(), shard)
	if res.Error == "" || !strings.Contains(res.Error, "panic: kaboom") {
		t.Fatalf("panic not recovered into a shard error: %+v", res)
	}
	if res.ErrorIndex != pts[0].Index {
		t.Errorf("ErrorIndex = %d, want %d (the panicking point)", res.ErrorIndex, pts[0].Index)
	}
	if len(res.Results) != 0 {
		t.Errorf("panic at the first point salvaged %d results, want 0", len(res.Results))
	}
}
