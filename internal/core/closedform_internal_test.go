package core

// Internal property tests for the chain certification's k-median
// machinery: the balanced-parts closed form against an exhaustive
// partition DP, and the greedy per-side link allocation against brute
// force over every (kL, kR) split. These pin the two mathematical
// facts CertifyChain leans on — balanced consecutive parts are optimal
// and per-side marginal improvements are non-increasing — so the O(n)
// certification never silently degrades into a heuristic.

import (
	"testing"

	"selfishnet/internal/metric"
)

// pathKMedianDP is the exhaustive reference for f(m, k): minimize
// Σ⌊t_j²/4⌋ over ALL consecutive partitions of a path of m vertices
// into k non-empty parts (nearest-facility service regions on a line
// are consecutive, and within a part the median is optimal).
func pathKMedianDP(m, k int) int64 {
	const inf = int64(1) << 62
	prev := make([]int64, m+1)
	cur := make([]int64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = medianCost(j)
	}
	for c := 2; c <= k; c++ {
		for j := 0; j <= m; j++ {
			cur[j] = inf
		}
		for j := c; j <= m; j++ {
			for t := 1; t <= j-c+1; t++ {
				if v := prev[j-t] + medianCost(t); v < cur[j] {
					cur[j] = v
				}
			}
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// TestPathKMedianMatchesExhaustiveDP pins the balanced-parts closed
// form against the partition DP for every (m, k) with m ≤ 18, and the
// non-increasing-marginals property (what makes the greedy allocation
// exact) out to m = 2048.
func TestPathKMedianMatchesExhaustiveDP(t *testing.T) {
	for m := 1; m <= 18; m++ {
		for k := 1; k <= m; k++ {
			if got, want := pathKMedian(m, k), pathKMedianDP(m, k); got != want {
				t.Errorf("f(%d,%d) = %d, DP %d", m, k, got, want)
			}
		}
	}
	for _, m := range []int{7, 64, 255, 1000, 2048} {
		prev := pathKMedian(m, 1) - pathKMedian(m, 2)
		for k := 2; k < m; k++ {
			d := pathKMedian(m, k) - pathKMedian(m, k+1)
			if d > prev {
				t.Fatalf("m=%d: marginal at k=%d (%d) exceeds k=%d (%d); greedy allocation unsound", m, k, d, k-1, prev)
			}
			prev = d
		}
	}
}

// TestChainSideAllocationExhaustive pins chainBestResponse against
// brute force over every (kL, kR) pair, for every peer of every small
// chain across the α regimes — the greedy walk must reach the exact
// optimum Key every time.
func TestChainSideAllocationExhaustive(t *testing.T) {
	for _, alpha := range []float64{0, 0.3, 1, 1.5, 2.5, 10, 1e6} {
		for n := 2; n <= 14; n++ {
			for i := 0; i < n; i++ {
				got, _, _ := chainBestResponse(n, i, alpha)
				mL, mR := i, n-1-i
				want := got // brute-force search below can only improve
				loL, hiL := 0, 0
				if mL > 0 {
					loL, hiL = 1, mL
				}
				loR, hiR := 0, 0
				if mR > 0 {
					loR, hiR = 1, mR
				}
				for kL := loL; kL <= hiL; kL++ {
					for kR := loR; kR <= hiR; kR++ {
						term := float64(int64(mL) + int64(mR) + pathKMedian(mL, max(kL, 1)) + pathKMedian(mR, max(kR, 1)))
						cand := Eval{Cost: Cost{Link: alpha * float64(kL+kR), Term: term}, FiniteTerm: term}
						if cand.Key() < want.Key() {
							want = cand
						}
					}
				}
				if got.Key() != want.Key() {
					t.Errorf("n=%d i=%d α=%v: greedy key %v, exhaustive %v", n, i, alpha, got.Key(), want.Key())
				}
			}
		}
	}
}

// TestChainWitnessAchievesClosedForm checks, for every peer of small
// chains, that the constructed witness strategy's evaluator cost
// equals the closed-form best-response Eval bit for bit — i.e. the
// balanced-median construction really achieves f, through the real
// SSSP machinery.
func TestChainWitnessAchievesClosedForm(t *testing.T) {
	for _, alpha := range []float64{0, 0.6, 1, 2.5, 40} {
		for n := 2; n <= 12; n++ {
			inst := mustUniformInstance(t, n)
			ev := NewEvaluator(inst)
			p, err := ChainProfile(n)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				want, kL, kR := chainBestResponse(n, i, alpha)
				w := chainWitness(n, i, kL, kR)
				got := ev.DeviationEvalStreamed(p, i, w)
				// The instance is built at α = 2.5; rescale the link part to
				// this α with the evaluator's own expression.
				got.Cost.Link = alpha * float64(w.Count())
				if got != want {
					t.Errorf("n=%d i=%d α=%v kL=%d kR=%d: witness eval %+v, closed form %+v", n, i, alpha, kL, kR, got, want)
				}
			}
		}
	}
}

// mustUniformInstance builds a directed implicit-uniform instance at
// α = 2.5 (the link part is rescaled by callers that vary α).
func mustUniformInstance(t *testing.T, n int) *Instance {
	t.Helper()
	s, err := metric.UniformImplicit(n)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(s, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}
