package export

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSONStream writes a JSON array of table documents incrementally: each
// Write encodes one table and flushes it to the underlying writer, so a
// long-running producer (the topogamed catalog and job listings, a
// sweep emitting tables as grid points finish) streams valid output
// without buffering the whole result set.
//
// The byte stream is identical to WriteJSONTables over the same tables
// (indented array, one document per table), so consumers cannot tell a
// streamed response from a buffered one. Close terminates the array;
// a stream with zero writes closes to the empty array "[]".
//
// JSONStream is not safe for concurrent use; serialize Writes.
type JSONStream struct {
	w   io.Writer
	n   int
	err error
}

// NewJSONStream starts an incremental JSON table array on w.
func NewJSONStream(w io.Writer) *JSONStream {
	return &JSONStream{w: w}
}

// Write appends one table to the array. The table is validated like
// WriteJSON (row widths must match the header). The first error sticks:
// subsequent Writes and Close return it unchanged.
func (s *JSONStream) Write(t *Table) error {
	if s.err != nil {
		return s.err
	}
	doc, err := t.jsonDoc()
	if err != nil {
		s.err = err
		return err
	}
	// Match encoding/json's SetIndent("", "  ") array layout: elements
	// indented one level, separated by ",\n".
	body, err := json.MarshalIndent(doc, "  ", "  ")
	if err != nil {
		s.err = err
		return err
	}
	head := "[\n  "
	if s.n > 0 {
		head = ",\n  "
	}
	if _, err := io.WriteString(s.w, head); err != nil {
		s.err = err
		return err
	}
	if _, err := s.w.Write(body); err != nil {
		s.err = err
		return err
	}
	s.n++
	return nil
}

// Close terminates the array (writing "[]" when nothing was written)
// and returns the first error seen. It does not close the underlying
// writer. Close is idempotent only in the error case; call it exactly
// once after the final Write.
func (s *JSONStream) Close() error {
	if s.err != nil {
		return s.err
	}
	tail := "\n]\n"
	if s.n == 0 {
		tail = "[]\n"
	}
	if _, err := io.WriteString(s.w, tail); err != nil {
		s.err = err
		return err
	}
	return nil
}

// Err returns the first error the stream has seen, if any.
func (s *JSONStream) Err() error { return s.err }

// StreamJSONTables writes tables through a JSONStream — a drop-in,
// constant-memory equivalent of WriteJSONTables for callers that
// already hold the full slice.
func StreamJSONTables(w io.Writer, tables []*Table) error {
	s := NewJSONStream(w)
	for i, t := range tables {
		if err := s.Write(t); err != nil {
			return fmt.Errorf("export: streaming table %d: %w", i, err)
		}
	}
	return s.Close()
}
