package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool fans all-pairs evaluations (social cost, term matrices, max
// stretch, connectivity) out across a fixed set of per-goroutine
// evaluator clones. Each worker prepares its own adjacency for the
// profile and claims sources from a shared counter; per-source results
// land in slices indexed by source and are reduced in index order, so
// every result is bit-identical to the sequential Evaluator methods.
//
// A Pool is safe for use from one goroutine at a time (like an
// Evaluator); the concurrency is internal. The profile must not be
// mutated while a Pool method runs.
type Pool struct {
	evs []*Evaluator
}

// NewPool creates a pool of `workers` evaluators over the instance.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func NewPool(inst *Instance, workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n := inst.N(); workers > n {
		workers = n
	}
	evs := make([]*Evaluator, workers)
	for i := range evs {
		evs[i] = NewEvaluator(inst)
	}
	return &Pool{evs: evs}
}

// Workers returns the pool's concurrency width.
func (pl *Pool) Workers() int { return len(pl.evs) }

// Instance returns the bound instance.
func (pl *Pool) Instance() *Instance { return pl.evs[0].inst }

// forEachSource runs fn for every source peer, fanning across the
// workers. fn receives the worker's evaluator (with the profile already
// prepared) and the SSSP distances from src, which it must not retain.
// A non-nil stop is polled before each source; once it returns true the
// remaining sources are skipped (early exit for short-circuit queries).
func (pl *Pool) forEachSource(p Profile, stop func() bool, fn func(ev *Evaluator, src int, d []float64)) {
	n := pl.Instance().N()
	if len(pl.evs) == 1 {
		ev := pl.evs[0]
		ev.prepare(p, -1, Strategy{})
		for i := 0; i < n; i++ {
			if stop != nil && stop() {
				return
			}
			fn(ev, i, ev.ssspFrom(i))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for _, ev := range pl.evs {
		wg.Add(1)
		go func(ev *Evaluator) {
			defer wg.Done()
			prepared := false
			for {
				if stop != nil && stop() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !prepared {
					ev.prepare(p, -1, Strategy{})
					prepared = true
				}
				fn(ev, i, ev.ssspFrom(i))
			}
		}(ev)
	}
	wg.Wait()
}

// settleRestRows fills dst[src], for every src in srcs, with the SSSP
// distances from src over profile p with peer skip's strategy emptied —
// the "graph minus the deviating peer" rows behind DeviationBatch and
// the BatchCache. Each worker prepares its own adjacency and claims
// sources from a shared counter; every row lands in the slot indexed by
// its source, so the result is byte-identical at any worker count (the
// ordered-reduce convention).
func (pl *Pool) settleRestRows(p Profile, skip int, srcs []int32, dst [][]float64) {
	if len(pl.evs) == 1 || len(srcs) == 1 {
		ev := pl.evs[0]
		ev.prepare(p, skip, Strategy{})
		for _, k := range srcs {
			copy(dst[k], ev.ssspFrom(int(k)))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for _, ev := range pl.evs {
		wg.Add(1)
		go func(ev *Evaluator) {
			defer wg.Done()
			prepared := false
			for {
				idx := int(next.Add(1)) - 1
				if idx >= len(srcs) {
					return
				}
				if !prepared {
					ev.prepare(p, skip, Strategy{})
					prepared = true
				}
				k := srcs[idx]
				copy(dst[k], ev.ssspFrom(int(k)))
			}
		}(ev)
	}
	wg.Wait()
}

// PeerEvals returns every peer's enriched cost under p, in peer order.
func (pl *Pool) PeerEvals(p Profile) []Eval {
	out := make([]Eval, pl.Instance().N())
	pl.forEachSource(p, nil, func(ev *Evaluator, src int, d []float64) {
		out[src] = ev.peerEvalFrom(d, src, p.OutDegree(src))
	})
	return out
}

// SocialCost returns the decomposed social cost C(G) = α|E| + Σ terms,
// bit-identical to Evaluator.SocialCost (per-source costs are summed in
// source order).
func (pl *Pool) SocialCost(p Profile) Cost {
	total := Cost{}
	for _, e := range pl.PeerEvals(p) {
		total.Link += e.Cost.Link
		total.Term += e.Cost.Term
	}
	return total
}

// MaxTerm returns the largest pairwise term, as Evaluator.MaxTerm.
func (pl *Pool) MaxTerm(p Profile) float64 {
	n := pl.Instance().N()
	perSource := make([]float64, n)
	pl.forEachSource(p, nil, func(ev *Evaluator, src int, d []float64) {
		inst := ev.inst
		maxT := 0.0
		direct := inst.distRow(src)
		for j := 0; j < n; j++ {
			if j == src {
				continue
			}
			if t := inst.model.Term(d[j], direct[j]); t > maxT {
				maxT = t
			}
		}
		perSource[src] = maxT
	})
	maxT := 0.0
	for _, t := range perSource {
		if t > maxT {
			maxT = t
		}
	}
	return maxT
}

// Connected reports whether every peer reaches every other along the
// directed overlay, as Evaluator.Connected.
func (pl *Pool) Connected(p Profile) bool {
	n := pl.Instance().N()
	var disconnected atomic.Bool
	pl.forEachSource(p, disconnected.Load, func(_ *Evaluator, src int, d []float64) {
		for j := 0; j < n; j++ {
			if j != src && math.IsInf(d[j], 1) {
				disconnected.Store(true)
				return
			}
		}
	})
	return !disconnected.Load()
}

// TermMatrix returns the per-pair cost terms, as Evaluator.TermMatrix.
func (pl *Pool) TermMatrix(p Profile) [][]float64 {
	n := pl.Instance().N()
	out := make([][]float64, n)
	pl.forEachSource(p, nil, func(ev *Evaluator, src int, d []float64) {
		inst := ev.inst
		row := make([]float64, n)
		direct := inst.distRow(src)
		for j := 0; j < n; j++ {
			if j != src {
				row[j] = inst.model.Term(d[j], direct[j])
			}
		}
		out[src] = row
	})
	return out
}
