// Command topoworker is a fabric worker: it registers with a
// topogamed coordinator started with -fabric, pulls sweep shards over
// HTTP, executes their grid points with the scenario engine, and
// pushes the rendered rows back. Workers are stateless and
// crash-safe — kill one mid-shard and the coordinator reassigns its
// work once the liveness lease lapses, with a byte-identical final
// table either way.
//
//	topogamed -addr :8080 -fabric &
//	topoworker -coordinator http://127.0.0.1:8080
//	topoworker -coordinator http://127.0.0.1:8080   # more workers = more throughput
//
// SIGINT/SIGTERM stop the worker cleanly; a shard in flight is simply
// abandoned and re-executed elsewhere.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "selfishnet/internal/experiments" // register the 13 paper runners
	"selfishnet/internal/fabric"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "topoworker:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("topoworker", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "http://127.0.0.1:8080", "base URL of the topogamed coordinator")
	name := fs.String("name", "", "worker name in coordinator logs (default: hostname)")
	par := fs.Int("par", 0, "engine parallelism per grid point (0 = all cores)")
	poll := fs.Duration("poll", 50*time.Millisecond, "re-poll interval when the shard queue is empty")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout against the coordinator")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "topoworker"
		}
		*name = host
	}

	w := &fabric.Worker{
		Client:      &fabric.HTTPClient{Base: *coordinator, Timeout: *timeout},
		Name:        *name,
		Parallelism: *par,
		Poll:        *poll,
		Logf:        log.Printf,
	}
	log.Printf("topoworker: %s polling %s", *name, *coordinator)
	return w.Run(ctx)
}
