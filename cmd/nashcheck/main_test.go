package main

import (
	"strings"
	"testing"
)

const nashDoc = `{
  "alpha": 2,
  "points": [[0], [1]],
  "links": [[0,1],[1,0]]
}`

const unstableDoc = `{
  "alpha": 2,
  "points": [[0], [1]],
  "links": []
}`

func TestNashcheckStable(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-"}, strings.NewReader(nashDoc), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "STABLE") || !strings.Contains(out.String(), "pure Nash equilibrium") {
		t.Errorf("output = %q", out.String())
	}
}

func TestNashcheckUnstable(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-"}, strings.NewReader(unstableDoc), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(out.String(), "UNSTABLE") {
		t.Errorf("output = %q", out.String())
	}
	// The unstable report lists the improving peers.
	if !strings.Contains(out.String(), "peer 0") {
		t.Errorf("missing peer detail: %q", out.String())
	}
}

func TestNashcheckOracles(t *testing.T) {
	for _, oracle := range []string{"exact", "local", "greedy"} {
		var out strings.Builder
		code, err := run([]string{"-oracle", oracle, "-"}, strings.NewReader(nashDoc), &out)
		if err != nil {
			t.Fatalf("%s: %v", oracle, err)
		}
		if code != 0 {
			t.Errorf("%s: exit = %d", oracle, code)
		}
	}
	if _, err := run([]string{"-oracle", "bogus", "-"}, strings.NewReader(nashDoc), &strings.Builder{}); err == nil {
		t.Error("bogus oracle should error")
	}
}

func TestNashcheckHeuristicNotClaimedExact(t *testing.T) {
	var out strings.Builder
	if _, err := run([]string{"-oracle", "local", "-"}, strings.NewReader(nashDoc), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "pure Nash equilibrium") {
		t.Errorf("local-search verdict must not claim exactness: %q", out.String())
	}
	if !strings.Contains(out.String(), "stable under local-search") {
		t.Errorf("output = %q", out.String())
	}
}

func TestNashcheckUsageErrors(t *testing.T) {
	if _, err := run(nil, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing file should error")
	}
	if _, err := run([]string{"does-not-exist.json"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing file on disk should error")
	}
	if _, err := run([]string{"-"}, strings.NewReader("{not json"), &strings.Builder{}); err == nil {
		t.Error("bad JSON should error")
	}
}

func TestNashcheckVerbose(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-v", "-"}, strings.NewReader(nashDoc), &out)
	if err != nil || code != 0 {
		t.Fatal(err, code)
	}
	if !strings.Contains(out.String(), "peer 0") || !strings.Contains(out.String(), "peer 1") {
		t.Errorf("verbose should list all peers: %q", out.String())
	}
}
