package scenario

import (
	"bytes"
	"strings"
	"testing"

	"selfishnet/internal/bestresponse"
)

// TestNormalizeFillsDefaults pins the canonical form: every engine
// default becomes explicit, auto-dispatch spellings collapse, and the
// result is idempotent and still valid.
func TestNormalizeFillsDefaults(t *testing.T) {
	spec := Spec{
		Metric:   MetricSpec{Family: "uniform", N: 8},
		Game:     GameSpec{Alpha: 2, Kernel: "auto"},
		Dynamics: DynamicsSpec{Engine: "auto"},
	}
	n := spec.Normalize()
	if n.Seed != DefaultSeed {
		t.Errorf("Seed = %d, want DefaultSeed %d", n.Seed, DefaultSeed)
	}
	if n.Metric.Dim != 2 {
		t.Errorf("uniform Dim = %d, want 2", n.Metric.Dim)
	}
	if n.Game.Model != "stretch" {
		t.Errorf("Model = %q, want stretch", n.Game.Model)
	}
	if n.Game.Kernel != "" || n.Dynamics.Engine != "" {
		t.Errorf("auto spellings should collapse to \"\": kernel %q engine %q",
			n.Game.Kernel, n.Dynamics.Engine)
	}
	if n.Start.Kind != "empty" {
		t.Errorf("Start.Kind = %q, want empty", n.Start.Kind)
	}
	if n.Dynamics.Policy != "round-robin" || n.Dynamics.Oracle != "exact" {
		t.Errorf("dynamics defaults = %q/%q", n.Dynamics.Policy, n.Dynamics.Oracle)
	}
	if n.Dynamics.Runs != 1 || n.Dynamics.MaxSteps != 5000 {
		t.Errorf("runs/max_steps = %d/%d, want 1/5000", n.Dynamics.Runs, n.Dynamics.MaxSteps)
	}
	if n.Dynamics.Tol != bestresponse.Tolerance {
		t.Errorf("Tol = %v, want bestresponse.Tolerance", n.Dynamics.Tol)
	}
	if strings.Join(n.Measures, ",") != strings.Join(DefaultMeasures, ",") {
		t.Errorf("Measures = %v, want DefaultMeasures", n.Measures)
	}
	if err := n.Validate(); err != nil {
		t.Errorf("normalized spec fails Validate: %v", err)
	}
	if again := n.Normalize(); hashOf(t, again) != hashOf(t, n) {
		t.Error("Normalize is not idempotent")
	}
}

// hashOf is a test helper: the spec's hash, failing the test on error.
func hashOf(t *testing.T, s Spec) string {
	t.Helper()
	h, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNormalizeQuickTrimsAndReplicaMode(t *testing.T) {
	spec := Spec{
		Quick:    true,
		Metric:   MetricSpec{Family: "clustered", N: 10},
		Game:     GameSpec{Alpha: 1},
		Dynamics: DynamicsSpec{Runs: 10, MaxSteps: 9000},
	}
	n := spec.Normalize()
	if n.Dynamics.Runs != 2 || n.Dynamics.MaxSteps != 1500 {
		t.Errorf("quick trims: runs/max_steps = %d/%d, want 2/1500", n.Dynamics.Runs, n.Dynamics.MaxSteps)
	}
	if n.Dynamics.LinkProb != 0.3 {
		t.Errorf("replica LinkProb = %v, want 0.3", n.Dynamics.LinkProb)
	}
	if n.Metric.Clusters != 3 || n.Metric.Radius != 0.02 {
		t.Errorf("clustered defaults = %d/%v", n.Metric.Clusters, n.Metric.Radius)
	}
	// Single-run specs must NOT gain a link_prob (Validate rejects it).
	single := Spec{Metric: MetricSpec{Family: "uniform", N: 6}, Game: GameSpec{Alpha: 1}}.Normalize()
	if single.Dynamics.LinkProb != 0 {
		t.Errorf("single-run LinkProb = %v, want 0", single.Dynamics.LinkProb)
	}
	if err := single.Validate(); err != nil {
		t.Errorf("normalized single-run spec fails Validate: %v", err)
	}
}

// TestNormalizeExperimentSpec pins that native routing specs only get
// seed normalization — declarative defaults would make them invalid.
func TestNormalizeExperimentSpec(t *testing.T) {
	n := Spec{Name: "e4-poa", Experiment: "e4-poa"}.Normalize()
	if n.Seed != DefaultSeed {
		t.Errorf("Seed = %d, want %d", n.Seed, DefaultSeed)
	}
	if err := n.Validate(); err != nil {
		t.Errorf("normalized experiment spec fails Validate: %v", err)
	}
}

// TestNormalizePreservesResults is the load-bearing property for the
// serve cache: a spec and its normalized form render byte-identical
// tables.
func TestNormalizePreservesResults(t *testing.T) {
	specs := []Spec{
		{Metric: MetricSpec{Family: "uniform", N: 7}, Game: GameSpec{Alpha: 2}},
		{Metric: MetricSpec{Family: "line", Positions: []float64{0, 1, 2, 3}}, Game: GameSpec{Alpha: 1.5},
			Start: StartSpec{Kind: "random"}},
		{Quick: true, Metric: MetricSpec{Family: "unit", N: 12}, Game: GameSpec{Alpha: 3},
			Dynamics: DynamicsSpec{Runs: 6}},
	}
	for i, spec := range specs {
		raw := renderSpec(t, spec, Params{})
		norm := renderSpec(t, spec.Normalize(), Params{})
		if !bytes.Equal(raw, norm) {
			t.Errorf("spec %d: normalized form renders differently\nraw:  %s\nnorm: %s", i, raw, norm)
		}
	}
}

func TestSpecHashStability(t *testing.T) {
	a := Spec{Metric: MetricSpec{Family: "uniform", N: 8}, Game: GameSpec{Alpha: 2}}
	// The same workload written with defaults spelled out.
	b := Spec{
		Seed:   DefaultSeed,
		Metric: MetricSpec{Family: "uniform", N: 8, Dim: 2},
		Game:   GameSpec{Alpha: 2, Model: "stretch", Kernel: "auto"},
		Start:  StartSpec{Kind: "empty"},
		Dynamics: DynamicsSpec{Policy: "round-robin", Oracle: "exact", MaxSteps: 5000,
			Runs: 1, Tol: bestresponse.Tolerance, Engine: "auto"},
		Measures: append([]string(nil), DefaultMeasures...),
	}
	ha, hb := hashOf(t, a), hashOf(t, b)
	if ha != hb {
		t.Errorf("equivalent specs hash differently:\n%s\n%s", ha, hb)
	}
	if !strings.HasPrefix(ha, "sha256:") || len(ha) != len("sha256:")+64 {
		t.Errorf("hash format = %q", ha)
	}
	c := a
	c.Game.Alpha = 3
	if hc := hashOf(t, c); hc == ha {
		t.Error("different alphas must hash differently")
	}
}

func TestSweepNormalizeAndHash(t *testing.T) {
	sw := Sweep{
		Base:   Spec{Metric: MetricSpec{Family: "uniform", N: 6}, Game: GameSpec{Alpha: 1}},
		Alphas: []float64{1, 2},
		Ns:     []int{6, 8},
	}
	n := sw.Normalize()
	if n.Base.Dynamics.Policy != "round-robin" {
		t.Errorf("base not normalized: policy %q", n.Base.Dynamics.Policy)
	}
	if len(n.Alphas) != 2 || n.Alphas[0] != 1 || n.Alphas[1] != 2 {
		t.Errorf("axes must be preserved verbatim: %v", n.Alphas)
	}
	h1, err := sw.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := sw.Normalize().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("sweep hash must be normalization-invariant")
	}
	re := sw
	re.Alphas = []float64{2, 1}
	h3, err := re.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("axis order determines row order and must change the hash")
	}
}
