// Command topogame runs the reproduction experiments for "On the
// Topologies Formed by Selfish Peers" (Moscibroda, Schmid, Wattenhofer;
// PODC 2006) and prints their result tables.
//
// Usage:
//
//	topogame list                 # show available experiments
//	topogame run all              # run every experiment
//	topogame run e4-poa e5-nonash # run selected experiments
//	topogame run -quick -csv e1-upper
//
// Flags for run:
//
//	-quick  reduced sizes (~10× faster; smoke testing)
//	-csv    emit CSV instead of aligned text
//	-seed N deterministic seed (default 1)
//	-par N  concurrent experiment runners (default 0 = all cores);
//	        tables print in id order and are bit-identical at any N
package main

import (
	"flag"
	"fmt"
	"os"

	"selfishnet/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topogame:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "list":
		for _, id := range experiments.IDs() {
			desc, err := experiments.Describe(id)
			if err != nil {
				return err
			}
			fmt.Printf("%-14s %s\n", id, desc)
		}
		return nil
	case "run":
		return runExperiments(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced experiment sizes")
	csv := fs.Bool("csv", false, "emit CSV instead of text tables")
	seed := fs.Uint64("seed", 1, "random seed")
	par := fs.Int("par", 0, "concurrent experiment runners (0 = all cores, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiments given; try 'topogame run all'")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	params := experiments.Params{Quick: *quick, Seed: *seed}
	// Runners execute concurrently, but tables come back in id order and
	// bit-identical to a sequential run, so the output is stable across
	// -par values.
	tables, err := experiments.RunAll(ids, params, *par)
	if err != nil {
		return err
	}
	for i, tb := range tables {
		if *csv {
			if err := tb.WriteCSV(os.Stdout); err != nil {
				return err
			}
		} else {
			if err := tb.WriteText(os.Stdout); err != nil {
				return err
			}
		}
		if i+1 < len(ids) {
			fmt.Println()
		}
	}
	return nil
}

func usage() {
	fmt.Fprint(os.Stderr, `topogame — experiments for "On the Topologies Formed by Selfish Peers"

commands:
  list                   list experiments with descriptions
  run [flags] <ids|all>  run experiments and print tables
  help                   show this help

run flags:
  -quick      reduced sizes (smoke test)
  -csv        CSV output
  -seed N     deterministic seed (default 1)
  -par N      concurrent runners (default 0 = all cores; output is
              identical at any value)
`)
}
