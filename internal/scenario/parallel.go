package scenario

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// splitBudget resolves a requested top-level parallelism against a task
// count into (workers, inner): `workers` concurrent tasks, each allowed
// an internal fan-out of `inner`. requested ≤ 0 selects all cores. A
// single task keeps the whole budget (so one experiment fans its
// replicas at full width); many concurrent tasks on few cores each run
// their internals sequentially. An explicit caller-set inner width
// (explicitInner > 0) is respected as-is.
func splitBudget(requested, tasks, explicitInner int) (workers, inner int) {
	if tasks <= 0 {
		return 0, 1
	}
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	workers = requested
	if workers > tasks {
		workers = tasks
	}
	inner = explicitInner
	if inner == 0 {
		inner = requested / workers
		if inner < 1 {
			inner = 1
		}
	}
	return workers, inner
}

// forEachIndex runs fn(i) for every i in [0, n) across `workers`
// goroutines claiming indices from a shared counter. workers ≤ 1 runs
// the plain sequential loop. Callers write results into slices indexed
// by i and reduce in index order, which is what keeps every scenario
// table bit-identical at any width.
func forEachIndex(n, workers int, fn func(int)) {
	forEachIndexCtx(context.Background(), n, workers, fn)
}

// forEachIndexCtx is forEachIndex with cooperative cancellation: ctx is
// polled before each index is claimed, so a cancelled context stops new
// work while indices already claimed run to completion (the "drain
// in-flight" convention the serve layer's job cancellation relies on).
// It reports whether every index ran.
func forEachIndexCtx(ctx context.Context, n, workers int, fn func(int)) bool {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return false
			}
			fn(i)
		}
		return true
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	// next ≥ n means every index was claimed (and, after Wait, ran to
	// completion) before cancellation stopped the workers — a cancel
	// that lands after the last claim must not report an aborted run.
	return int(next.Load()) >= n
}
