package metric

import (
	"testing"

	"selfishnet/internal/rng"
)

func TestClassifyUniform(t *testing.T) {
	s, err := Uniform(9)
	if err != nil {
		t.Fatal(err)
	}
	info := Classify(s)
	if info.Kind != ClassUniform || info.Unit != 1 {
		t.Fatalf("uniform metric: %+v", info)
	}
	if !info.IntegerValued || info.MaxWeight != 1 {
		t.Fatalf("unit 1 must also be integer-valued: %+v", info)
	}

	scaled, err := Scale(s, 0.37)
	if err != nil {
		t.Fatal(err)
	}
	info = Classify(scaled)
	if info.Kind != ClassUniform || info.Unit != 0.37 {
		t.Fatalf("scaled uniform metric: %+v", info)
	}
	if info.IntegerValued {
		t.Fatalf("unit 0.37 is not integer-valued: %+v", info)
	}
}

func TestClassifySmallInt(t *testing.T) {
	d := [][]float64{
		{0, 3, 5, 4},
		{3, 0, 4, 6},
		{5, 4, 0, 3},
		{4, 6, 3, 0},
	}
	s, err := NewMatrixUnchecked(d)
	if err != nil {
		t.Fatal(err)
	}
	info := Classify(s)
	if info.Kind != ClassSmallInt || !info.IntegerValued || info.MaxWeight != 6 {
		t.Fatalf("integer metric: %+v", info)
	}
}

func TestClassifyGeneral(t *testing.T) {
	s, err := UniformPoints(rng.New(5), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if info := Classify(s); info.Kind != ClassGeneral || info.IntegerValued {
		t.Fatalf("random points: %+v", info)
	}

	// Integers beyond the Dial cap degrade to general: the bucket array
	// would no longer be small.
	big := float64(MaxSmallIntWeight + 1)
	d := [][]float64{
		{0, 2, big},
		{2, 0, big},
		{big, big, 0},
	}
	m, err := NewMatrixUnchecked(d)
	if err != nil {
		t.Fatal(err)
	}
	if info := Classify(m); info.Kind != ClassGeneral {
		t.Fatalf("over-cap integers: %+v", info)
	}

	if info := ClassifyFunc(1, nil); info.Kind != ClassGeneral {
		t.Fatalf("degenerate n: %+v", info)
	}
}
