package main

import (
	"testing"
)

func TestTopogameCommands(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Errorf("list: %v", err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
	if err := run(nil); err == nil {
		t.Error("missing command should error")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown command should error")
	}
	if err := run([]string{"run"}); err == nil {
		t.Error("run without ids should error")
	}
	if err := run([]string{"run", "not-an-experiment"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestTopogameRunQuick(t *testing.T) {
	// One representative experiment in quick+CSV mode (stdout goes to
	// the test log, which is fine).
	if err := run([]string{"run", "-quick", "-csv", "e4-poa"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"run", "-quick", "-seed", "9", "e2-fig1", "e3-cost"}); err != nil {
		t.Fatalf("multi run: %v", err)
	}
}
