package core

import (
	"math"
	"testing"
	"testing/quick"

	"selfishnet/internal/metric"
	"selfishnet/internal/rng"
)

// TestQuickScaleInvariance: scaling every distance by c > 0 leaves all
// stretch-model costs unchanged — the game only sees ratios. This is a
// load-bearing property: it means instances can be normalized freely.
func TestQuickScaleInvariance(t *testing.T) {
	f := func(seed uint64, scaleRaw uint8) bool {
		r := rng.New(seed)
		scale := 0.1 + float64(scaleRaw)/16 // 0.1 .. ~16
		n := 3 + r.Intn(6)
		space, err := metric.UniformPoints(r, n, 2)
		if err != nil {
			return false
		}
		scaled, err := metric.Scale(space, scale)
		if err != nil {
			return false
		}
		alpha := r.Range(0, 8)
		a, err := NewInstance(space, alpha)
		if err != nil {
			return false
		}
		b, err := NewInstance(scaled, alpha)
		if err != nil {
			return false
		}
		evA, evB := NewEvaluator(a), NewEvaluator(b)
		p := randomProfile(r, n, 0.4)
		for i := 0; i < n; i++ {
			ca, cb := evA.PeerEval(p, i), evB.PeerEval(p, i)
			if ca.Unreachable != cb.Unreachable {
				return false
			}
			if math.Abs(ca.Key()-cb.Key()) > 1e-6*math.Max(1, ca.Key()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickTermMatrixConsistentWithPeerEval: the stretch matrix row sums
// must reproduce each peer's term cost.
func TestQuickTermMatrixConsistentWithPeerEval(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(6)
		space, err := metric.UniformPoints(r, n, 2)
		if err != nil {
			return false
		}
		inst, err := NewInstance(space, 2)
		if err != nil {
			return false
		}
		ev := NewEvaluator(inst)
		p := randomProfile(r, n, 0.5)
		tm := ev.TermMatrix(p)
		for i := 0; i < n; i++ {
			sum, unreachable := 0.0, 0
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if math.IsInf(tm[i][j], 1) {
					unreachable++
				} else {
					sum += tm[i][j]
				}
			}
			e := ev.PeerEval(p, i)
			if e.Unreachable != unreachable {
				return false
			}
			if math.Abs(e.FiniteTerm-sum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickAddingLinksNeverHurtsReachability: adding a link can only
// shrink distances, so unreachable counts and finite terms are monotone.
func TestQuickAddingLinksNeverHurtsReachability(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(6)
		space, err := metric.UniformPoints(r, n, 2)
		if err != nil {
			return false
		}
		inst, err := NewInstance(space, 1)
		if err != nil {
			return false
		}
		ev := NewEvaluator(inst)
		p := randomProfile(r, n, 0.2)
		// Pick a random absent link and add it.
		from := r.Intn(n)
		to := r.Intn(n - 1)
		if to >= from {
			to++
		}
		before := ev.PeerEval(p, from)
		q := p.Clone()
		_ = q.AddLink(from, to)
		after := ev.PeerEval(q, from)
		if after.Unreachable > before.Unreachable {
			return false
		}
		// Term part (excluding the α for the extra link) cannot grow.
		return after.FiniteTerm <= before.FiniteTerm+1e-9 ||
			after.Unreachable < before.Unreachable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestProfileSpaceEnumerationCount: EnumerateProfiles yields exactly
// 2^(n(n-1)) distinct profiles.
func TestProfileSpaceEnumerationCount(t *testing.T) {
	for _, n := range []int{2, 3} {
		seen := make(map[uint64]bool)
		count := 0
		err := EnumerateProfiles(n, 0, func(p Profile) bool {
			count++
			seen[p.Hash()] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		want := int(ProfileSpaceSize(n))
		if count != want {
			t.Errorf("n=%d: enumerated %d, want %d", n, count, want)
		}
		if len(seen) != want {
			t.Errorf("n=%d: %d distinct hashes, want %d (collision or repeat)", n, len(seen), want)
		}
	}
}

func TestEnumerateProfilesEarlyStop(t *testing.T) {
	count := 0
	err := EnumerateProfiles(3, 0, func(Profile) bool {
		count++
		return count < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("early stop failed: %d", count)
	}
}

func TestEnumerateProfilesValidation(t *testing.T) {
	if err := EnumerateProfiles(0, 0, func(Profile) bool { return true }); err == nil {
		t.Error("n=0 should error")
	}
	if err := EnumerateProfiles(6, 100, func(Profile) bool { return true }); err == nil {
		t.Error("space over budget should error")
	}
}
