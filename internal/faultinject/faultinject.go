// Package faultinject is the deterministic chaos layer: a seeded fault
// plan expanded by internal/rng streams into per-call, per-point and
// per-write fault decisions against the sweep fabric. It wraps the
// three surfaces where real deployments fail —
//
//   - the fabric.Client transport (dropped and delayed
//     Register/Heartbeat/Next/Complete calls),
//   - worker execution (injected per-point errors and panics, plus
//     always-failing "poisoned" points), and
//   - the cas.Store write path (torn writes and bit flips, via
//     Store.SetPutFault),
//
// so the chaos differential suite can assert the house invariant under
// fire: every fault the plan injects is either transparently retried
// or quarantined, and the final sweep table stays byte-identical to a
// fault-free run.
//
// Determinism contract: all draws come from streams seeded by
// Plan.Seed, so a single-threaded replay of the same call sequence
// makes identical decisions. Under a concurrent fleet the *assignment*
// of faults to calls depends on arrival order — what stays fixed is
// the budget shape (fault probabilities, the per-point failure cap)
// that the convergence argument rests on: injected point failures are
// capped below the coordinator's retry budget, so no transient fault
// can escalate into a quarantine, and CAS corruption is always caught
// by read-time verification and re-executed.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"selfishnet/internal/fabric"
	"selfishnet/internal/rng"
	"selfishnet/internal/scenario"
)

// ErrInjected is the root of every error this package fabricates;
// test assertions match it with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Plan is a seeded chaos plan. Probabilities are per decision (per
// client call, per point attempt, per store write); zero disables the
// fault class. The zero Plan injects nothing.
type Plan struct {
	// Seed seeds every decision stream.
	Seed uint64

	// DropCall is the probability a fabric client call fails with an
	// ErrInjected transport-style error before reaching the
	// coordinator.
	DropCall float64
	// DelayCall is the probability a call is stalled by Delay before
	// being forwarded — long enough delays simulate hangs that outlive
	// the worker's lease.
	DelayCall float64
	// Delay is the injected stall (default 10ms).
	Delay time.Duration

	// PointError is the probability one grid-point execution attempt
	// fails with an injected error.
	PointError float64
	// PointPanic is the probability one attempt panics instead (the
	// worker must recover it into a ShardResult error).
	PointPanic float64
	// MaxPointFails caps injected failures per grid point (default 2 —
	// one under the coordinator's default retry budget, so chaos alone
	// never quarantines a healthy point).
	MaxPointFails int
	// Poison lists spec hashes whose execution always fails, past any
	// cap — the driver for poison-point quarantine scenarios.
	Poison []string

	// TornWrite is the probability a store Put lands truncated to half
	// its length (a torn write caught mid-rename).
	TornWrite float64
	// BitFlip is the probability a Put lands with one flipped bit.
	BitFlip float64
}

// Stats counts the faults actually injected.
type Stats struct {
	CallsDropped int64
	CallsDelayed int64
	PointErrors  int64
	PointPanics  int64
	PoisonHits   int64
	TornWrites   int64
	BitFlips     int64
}

// Injector is the runtime state of one plan: independent decision
// streams per fault surface plus the per-point failure ledger. Safe
// for concurrent use.
type Injector struct {
	plan Plan

	mu         sync.Mutex
	calls      *rng.RNG
	points     *rng.RNG
	writes     *rng.RNG
	pointFails map[string]int
	poison     map[string]bool
	stats      Stats
}

// New expands a plan into an injector. Each fault surface gets its own
// Split stream so, e.g., adding CAS faults to a plan does not reshuffle
// which client calls drop.
func New(plan Plan) *Injector {
	if plan.Delay <= 0 {
		plan.Delay = 10 * time.Millisecond
	}
	if plan.MaxPointFails <= 0 {
		plan.MaxPointFails = 2
	}
	root := rng.New(plan.Seed)
	in := &Injector{
		plan:       plan,
		calls:      root.Split(),
		points:     root.Split(),
		writes:     root.Split(),
		pointFails: make(map[string]int),
		poison:     make(map[string]bool, len(plan.Poison)),
	}
	for _, h := range plan.Poison {
		in.poison[h] = true
	}
	return in
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// callFault decides one client call's fate: an error (drop), a stall
// to apply before forwarding, or neither.
func (in *Injector) callFault(op string) (time.Duration, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.DropCall > 0 && in.calls.Bool(in.plan.DropCall) {
		in.stats.CallsDropped++
		return 0, fmt.Errorf("%w: dropped %s call", ErrInjected, op)
	}
	if in.plan.DelayCall > 0 && in.calls.Bool(in.plan.DelayCall) {
		in.stats.CallsDelayed++
		return in.plan.Delay, nil
	}
	return 0, nil
}

// Client wraps a fabric client with the plan's call faults: each
// Register/Heartbeat/Next/Complete call may be dropped (an ErrInjected
// error, as a flaky network would produce) or delayed before reaching
// the inner client.
func (in *Injector) Client(inner fabric.Client) fabric.Client {
	return chaosClient{in: in, inner: inner}
}

type chaosClient struct {
	in    *Injector
	inner fabric.Client
}

func (c chaosClient) fault(op string) error {
	d, err := c.in.callFault(op)
	if err != nil {
		return err
	}
	if d > 0 {
		time.Sleep(d)
	}
	return nil
}

// Register implements fabric.Client.
func (c chaosClient) Register(name string) (fabric.WorkerInfo, error) {
	if err := c.fault("register"); err != nil {
		return fabric.WorkerInfo{}, err
	}
	return c.inner.Register(name)
}

// Heartbeat implements fabric.Client.
func (c chaosClient) Heartbeat(workerID string) error {
	if err := c.fault("heartbeat"); err != nil {
		return err
	}
	return c.inner.Heartbeat(workerID)
}

// Next implements fabric.Client.
func (c chaosClient) Next(workerID string) (*fabric.Shard, error) {
	if err := c.fault("next"); err != nil {
		return nil, err
	}
	return c.inner.Next(workerID)
}

// Complete implements fabric.Client.
func (c chaosClient) Complete(workerID, shardID string, res fabric.ShardResult) error {
	if err := c.fault("complete"); err != nil {
		return err
	}
	return c.inner.Complete(workerID, shardID, res)
}

type pointFaultKind int

const (
	faultNone pointFaultKind = iota
	faultError
	faultPanic
	faultPoison
)

// RunPoint is a drop-in for the fabric.Worker RunPoint seam: it
// injects the plan's per-point errors, panics and poison before
// delegating healthy attempts to the real scenario engine.
func (in *Injector) RunPoint(ctx context.Context, spec scenario.Spec, measures []string, parallelism int) (scenario.PointResult, error) {
	switch in.pointFault(spec) {
	case faultPanic:
		panic("faultinject: injected panic")
	case faultError:
		return scenario.PointResult{}, fmt.Errorf("%w: point execution failed", ErrInjected)
	case faultPoison:
		return scenario.PointResult{}, fmt.Errorf("%w: poisoned point", ErrInjected)
	}
	return scenario.RunPointContext(ctx, spec, measures, parallelism)
}

// pointFault decides one execution attempt's fate. Poisoned points
// always fail; everything else fails at most MaxPointFails times so
// retries are guaranteed to converge under the coordinator's budget.
func (in *Injector) pointFault(spec scenario.Spec) pointFaultKind {
	h, err := spec.Hash()
	if err != nil {
		h = ""
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.poison[h] {
		in.stats.PoisonHits++
		return faultPoison
	}
	if in.pointFails[h] >= in.plan.MaxPointFails {
		return faultNone
	}
	if in.plan.PointPanic > 0 && in.points.Bool(in.plan.PointPanic) {
		in.pointFails[h]++
		in.stats.PointPanics++
		return faultPanic
	}
	if in.plan.PointError > 0 && in.points.Bool(in.plan.PointError) {
		in.pointFails[h]++
		in.stats.PointErrors++
		return faultError
	}
	return faultNone
}

// PutFault returns a hook for cas.Store.SetPutFault that lands the
// plan's torn writes (truncation to half length, as if the process
// died mid-write) and single-bit flips on disk. The store's read-time
// checksum verification is what must turn these into quarantined
// misses rather than corrupt results.
func (in *Injector) PutFault() func(ns, hash string, blob []byte) []byte {
	return func(ns, hash string, blob []byte) []byte {
		in.mu.Lock()
		defer in.mu.Unlock()
		if in.plan.TornWrite > 0 && in.writes.Bool(in.plan.TornWrite) {
			in.stats.TornWrites++
			return append([]byte(nil), blob[:len(blob)/2]...)
		}
		if in.plan.BitFlip > 0 && len(blob) > 0 && in.writes.Bool(in.plan.BitFlip) {
			in.stats.BitFlips++
			out := append([]byte(nil), blob...)
			out[in.writes.Intn(len(out))] ^= 1 << in.writes.Intn(8)
			return out
		}
		return blob
	}
}
