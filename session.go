package selfishnet

import (
	"selfishnet/internal/analysis"
	"selfishnet/internal/bestresponse"
	"selfishnet/internal/core"
	"selfishnet/internal/dynamics"
	"selfishnet/internal/nash"
	"selfishnet/internal/opt"
)

// Session is a stateful handle on one game: it owns a cached evaluator
// (CSR/heap scratch buffers) and a lazily created evaluation pool, so a
// sequence of operations on the same game reuses those buffers instead
// of reallocating them per call, the dominant cost of the one-shot
// facade functions (see BenchmarkSessionReuse).
//
// A Session is not safe for concurrent use; create one per goroutine,
// or use the internal fan-outs (DynamicsConfig.Parallelism, Pool) which
// parallelize safely under a single Session. The one-shot package
// functions (SocialCost, RunDynamics, ...) remain as thin wrappers that
// construct an ephemeral Session per call.
type Session struct {
	g    *Game
	ev   *core.Evaluator
	pool *core.Pool
}

// NewSession creates a session over the game.
func NewSession(g *Game) *Session {
	return &Session{g: g, ev: core.NewEvaluator(g)}
}

// Game returns the bound game.
func (s *Session) Game() *Game { return s.g }

// Pool returns the session's evaluation pool (created on first use with
// one worker per core), for bulk all-pairs work over large profiles.
func (s *Session) Pool() *Pool {
	if s.pool == nil {
		s.pool = core.NewPool(s.g, 0)
	}
	return s.pool
}

// PeerCost returns peer i's decomposed cost under profile p.
func (s *Session) PeerCost(p Profile, i int) Cost { return s.ev.PeerCost(p, i) }

// SocialCost returns the decomposed social cost C(G[p]).
func (s *Session) SocialCost(p Profile) Cost { return s.ev.SocialCost(p) }

// MaxStretch returns the largest pairwise stretch in the overlay (+Inf
// when some peer cannot reach another).
func (s *Session) MaxStretch(p Profile) float64 { return s.ev.MaxTerm(p) }

// IsNash reports whether p is an exact pure Nash equilibrium.
func (s *Session) IsNash(p Profile) (bool, error) { return nash.IsNash(s.ev, p) }

// CheckNash reports every peer's best deviation under the exact oracle.
func (s *Session) CheckNash(p Profile) (NashReport, error) {
	return nash.Check(s.ev, p, &bestresponse.Exact{}, bestresponse.Tolerance)
}

// BestResponse returns peer i's exact best response to p.
func (s *Session) BestResponse(p Profile, i int) (Strategy, Eval, error) {
	res, err := (&bestresponse.Exact{}).BestResponse(s.ev, p, i)
	if err != nil {
		return Strategy{}, Eval{}, err
	}
	return res.Strategy, res.Eval, nil
}

// RunDynamics executes best-response dynamics from start (see
// DynamicsConfig for oracles, activation policies, cycle detection).
func (s *Session) RunDynamics(start Profile, cfg DynamicsConfig) (DynamicsResult, error) {
	return dynamics.Run(s.ev, start, cfg)
}

// EnumerateEquilibria exhaustively lists every pure Nash equilibrium
// (exponential; n ≤ 5). maxProfiles caps the search (0 = 2^22).
func (s *Session) EnumerateEquilibria(maxProfiles int) ([]Profile, error) {
	return nash.EnumerateEquilibria(s.ev, maxProfiles)
}

// PoABounds sandwiches the Price of Anarchy contribution of profile p:
// the ratio of C(G[p]) to an upper bound on OPT (portfolio + annealing)
// and to the universal lower bound αn + Σ lower-bound terms.
func (s *Session) PoABounds(p Profile, r *RNG) (lower, upper float64, err error) {
	cost := s.ev.SocialCost(p).Total()
	_, best, err := opt.BestKnown(s.ev, r)
	if err != nil {
		return 0, 0, err
	}
	return cost / best.Total(), cost / opt.LowerBound(s.g), nil
}

// AnalyzeTopology computes the structural summary of p.
func (s *Session) AnalyzeTopology(p Profile) (TopologyStats, error) {
	return analysis.Analyze(s.ev, p)
}
