// Package selfishnet is a library for studying the topologies formed by
// selfish peers, reproducing Moscibroda, Schmid and Wattenhofer, "On the
// Topologies Formed by Selfish Peers" (PODC 2006 / Dagstuhl 06131).
//
// # The game
//
// Peers are points in a metric space M = (V, d). Each peer i picks the
// set s_i of peers it maintains directed links to, paying
//
//	c_i(s) = α·|s_i| + Σ_{j≠i} stretch(i, j),
//	stretch(i, j) = d_G(i, j) / d(i, j),
//
// where d_G is the shortest-path distance through the overlay G[s]. The
// parameter α prices link maintenance against lookup latency. The social
// cost C(G) = α|E| + Σ stretch sums everyone's cost.
//
// # What the library provides
//
//   - metric spaces (Euclidean point sets, explicit matrices, the
//     paper's exponential line and five-cluster instances, generators);
//   - cost evaluation, exact and heuristic best-response oracles,
//     Nash-equilibrium verification and exhaustive equilibrium
//     enumeration for small instances;
//   - best-response dynamics with activation policies and proven cycle
//     detection (Theorem 5.1's non-convergence is observable);
//   - social-optimum machinery (construction portfolio, simulated
//     annealing, universal lower bounds) for Price-of-Anarchy ratios;
//   - the paper's constructions: the Figure 1 lower-bound family
//     (PoA = Θ(min(α, n))) and the Figure 2/3 instance I_k with no pure
//     Nash equilibrium;
//   - baseline games (Fabrikant et al. network creation, Corbo–Parkes
//     bilateral) on the same engine;
//   - a discrete-event overlay simulator (lookups, maintenance pings,
//     churn) grounding the game quantities in system metrics;
//   - the experiment harness regenerating every theorem/figure table
//     (see cmd/topogame and EXPERIMENTS.md), built on a declarative
//     scenario engine: JSON experiment specs and parameter sweeps over
//     α, n, seed and γ (topogame spec/sweep).
//
// # Quick start
//
//	space, _ := selfishnet.Line([]float64{0, 1, 3, 7})
//	game, _ := selfishnet.NewGame(space, 2.0)
//	res, _ := selfishnet.RunDynamics(game, selfishnet.EmptyProfile(4), selfishnet.DynamicsConfig{})
//	fmt.Println(res.Converged, selfishnet.SocialCost(game, res.Final))
//
// The package functions above are one-shot conveniences; when issuing
// many operations against the same game, create a Session — it caches
// the evaluator's adjacency and heap buffers across calls:
//
//	s := selfishnet.NewSession(game)
//	res, _ := s.RunDynamics(selfishnet.EmptyProfile(4), selfishnet.DynamicsConfig{})
//	fmt.Println(s.IsNash(res.Final))
//
// See examples/ for complete programs.
package selfishnet

import (
	"selfishnet/internal/analysis"
	"selfishnet/internal/baseline"
	"selfishnet/internal/bestresponse"
	"selfishnet/internal/construct"
	"selfishnet/internal/core"
	"selfishnet/internal/dynamics"
	"selfishnet/internal/export"
	"selfishnet/internal/metric"
	"selfishnet/internal/nash"
	"selfishnet/internal/opt"
	"selfishnet/internal/overlay"
	"selfishnet/internal/rng"
)

// Core game types (aliases into the implementation packages; the facade
// is the supported import surface).
type (
	// Game is a topology game instance: metric space, α, cost model.
	Game = core.Instance
	// GameOption configures NewGame.
	GameOption = core.Option
	// Profile is a full strategy combination; G[s] is its topology.
	Profile = core.Profile
	// Strategy is one peer's set of directed links (a bitset).
	Strategy = core.Strategy
	// Cost is a decomposed cost: Link (α side) + Term (stretch side).
	Cost = core.Cost
	// Eval enriches Cost with reachability, ordering disconnected
	// strategies sensibly.
	Eval = core.Eval
	// Space is a finite metric space over peers.
	Space = metric.Space
	// Positioned is a Space with geometric coordinates.
	Positioned = metric.Positioned
	// Oracle computes best responses.
	Oracle = bestresponse.Oracle
	// DynamicsConfig parameterizes best-response dynamics.
	DynamicsConfig = dynamics.Config
	// DynamicsResult summarizes a dynamics run.
	DynamicsResult = dynamics.Result
	// NashReport is the outcome of an equilibrium check.
	NashReport = nash.Report
	// Table is a rendered experiment result.
	Table = export.Table
	// RNG is the deterministic random source used across the library.
	RNG = rng.RNG
)

// WithDistanceModel switches the game to the Fabrikant-style raw
// distance objective (default is the paper's stretch objective).
func WithDistanceModel() GameOption { return core.WithModel(core.DistanceModel{}) }

// WithUndirectedLinks makes links traversable both ways (Fabrikant
// semantics); the paper's game is directed.
func WithUndirectedLinks() GameOption { return core.WithUndirected() }

// WithCongestion enables the Section 6 future-work extension: the link
// u→v costs d(u,v)·(1+γ·indeg(v)), so heavily pointed-at peers slow
// down. γ = 0 recovers the paper's model.
func WithCongestion(gamma float64) GameOption { return core.WithCongestion(gamma) }

// NewGame creates a topology game over the space with parameter α ≥ 0.
func NewGame(space Space, alpha float64, opts ...GameOption) (*Game, error) {
	return core.NewInstance(space, alpha, opts...)
}

// NewRNG returns a deterministic random source for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Line builds a 1-D Euclidean space from positions.
func Line(positions []float64) (Positioned, error) { return metric.Line(positions) }

// Points builds a Euclidean space from coordinate rows.
func Points(coords [][]float64) (Positioned, error) { return metric.NewPoints(coords) }

// UniformPeers draws n uniform points in the dim-dimensional unit cube.
func UniformPeers(r *RNG, n, dim int) (Positioned, error) {
	return metric.UniformPoints(r, n, dim)
}

// EmptyProfile returns a profile with no links on n peers.
func EmptyProfile(n int) Profile { return core.NewProfile(n) }

// ProfileFromLinks builds a profile from adjacency lists.
func ProfileFromLinks(n int, links map[int][]int) (Profile, error) {
	return core.ProfileFromLinks(n, links)
}

// RandomProfile links each ordered pair independently with probability q.
func RandomProfile(r *RNG, n int, q float64) Profile {
	return dynamics.RandomProfile(r, n, q)
}

// PeerCost returns peer i's decomposed cost under profile p.
func PeerCost(g *Game, p Profile, i int) Cost {
	return NewSession(g).PeerCost(p, i)
}

// SocialCost returns the decomposed social cost C(G[p]).
func SocialCost(g *Game, p Profile) Cost {
	return NewSession(g).SocialCost(p)
}

// Pool fans all-pairs evaluations (social cost, max stretch,
// connectivity) out across per-goroutine evaluator clones; results are
// bit-identical to the sequential equivalents. Create one per game with
// NewPool and reuse it across profiles.
type Pool = core.Pool

// NewPool creates an evaluation pool of `workers` goroutines over the
// game (workers <= 0 selects GOMAXPROCS).
func NewPool(g *Game, workers int) *Pool { return core.NewPool(g, workers) }

// MaxStretch returns the largest pairwise stretch in the overlay (+Inf
// when some peer cannot reach another).
func MaxStretch(g *Game, p Profile) float64 {
	return NewSession(g).MaxStretch(p)
}

// IsNash reports whether p is an exact pure Nash equilibrium of g.
func IsNash(g *Game, p Profile) (bool, error) {
	return NewSession(g).IsNash(p)
}

// CheckNash reports every peer's best deviation under the exact oracle.
func CheckNash(g *Game, p Profile) (NashReport, error) {
	return NewSession(g).CheckNash(p)
}

// BestResponse returns peer i's exact best response to p.
func BestResponse(g *Game, p Profile, i int) (Strategy, Eval, error) {
	return NewSession(g).BestResponse(p, i)
}

// RunDynamics executes best-response dynamics from start (see
// DynamicsConfig for oracles, activation policies, cycle detection).
func RunDynamics(g *Game, start Profile, cfg DynamicsConfig) (DynamicsResult, error) {
	return NewSession(g).RunDynamics(start, cfg)
}

// EnumerateEquilibria exhaustively lists every pure Nash equilibrium of
// g (exponential; n ≤ 5). maxProfiles caps the search (0 = 2^22).
func EnumerateEquilibria(g *Game, maxProfiles int) ([]Profile, error) {
	return NewSession(g).EnumerateEquilibria(maxProfiles)
}

// PoABounds sandwiches the Price of Anarchy contribution of profile p:
// the ratio of C(G[p]) to an upper bound on OPT (portfolio + annealing)
// and to the universal lower bound αn + Σ lower-bound terms.
func PoABounds(g *Game, p Profile, r *RNG) (lower, upper float64, err error) {
	return NewSession(g).PoABounds(p, r)
}

// OptimumLowerBound returns the universal social-cost lower bound
// αn + Σ_{i≠j} term-lower-bounds (= αn + n(n-1) for the stretch model).
func OptimumLowerBound(g *Game) float64 { return opt.LowerBound(g) }

// Figure1 is the paper's lower-bound construction (re-exported).
type Figure1 = construct.Figure1

// NewFigure1 builds the Figure 1 instance and topology: a 1-D
// exponential line whose drawn link set is a Nash equilibrium for
// α ≥ 3.4 with social cost Θ(αn²) — the PoA = Θ(min(α,n)) witness.
func NewFigure1(n int, alpha float64) (*Figure1, error) {
	return construct.NewFigure1(n, alpha)
}

// IkInstance is the paper's Figure 2 five-cluster instance (re-export).
type IkInstance = construct.Ik

// NewIk builds the instance I_k (k peers per cluster, α = 0.947k with
// the shipped geometry) which has no pure Nash equilibrium.
func NewIk(k int) (*IkInstance, error) {
	return construct.NewIk(k, construct.DefaultIkParams())
}

// NewFabrikantGame builds the Fabrikant et al. (PODC 2003) hop-count
// network-creation game on n vertices.
func NewFabrikantGame(n int, alpha float64) (*Game, error) {
	return baseline.NewFabrikant(n, alpha)
}

// Overlay simulation (re-exports).
type (
	// OverlayConfig parameterizes the discrete-event overlay simulator.
	OverlayConfig = overlay.Config
	// OverlayMetrics aggregates simulation outcomes.
	OverlayMetrics = overlay.Metrics
)

// Repair strategies for the overlay simulator.
const (
	RepairNone    = overlay.RepairNone
	RepairSelfish = overlay.RepairSelfish
	RepairNearest = overlay.RepairNearest
)

// SimulateOverlay runs the discrete-event overlay simulation.
func SimulateOverlay(cfg OverlayConfig) (OverlayMetrics, error) {
	sim, err := overlay.New(cfg)
	if err != nil {
		return OverlayMetrics{}, err
	}
	return sim.Run()
}

// TopologyStats summarizes a topology's anatomy: degree and stretch
// distributions, load balance, per-peer cost shares.
type TopologyStats = analysis.TopologyStats

// AnalyzeTopology computes the structural summary of p over g.
func AnalyzeTopology(g *Game, p Profile) (TopologyStats, error) {
	return NewSession(g).AnalyzeTopology(p)
}

// Structured overlay constructions (re-exports).
var (
	// FullMesh links every ordered pair.
	FullMesh = opt.FullMesh
	// Chain links consecutive indices bidirectionally (the paper's G̃
	// on sorted lines).
	Chain = opt.Chain
	// Star links everyone with a center.
	Star = opt.Star
	// Tulip is the locality-aware O(√n)-degree overlay of footnote 2.
	Tulip = opt.Tulip
)
