package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"selfishnet/internal/cas"
	"selfishnet/internal/export"
	"selfishnet/internal/fabric"
	"selfishnet/internal/scenario"
)

// Config tunes a Server. The zero value is usable: sensible defaults
// are filled in by New.
type Config struct {
	// Workers is the async job worker pool width (default 2). Each
	// worker drains one sweep job at a time.
	Workers int
	// QueueDepth bounds queued (not yet running) jobs; submissions
	// beyond it are rejected with 503 (default 256).
	QueueDepth int
	// PointParallelism is the grid fan-out width inside one sweep job
	// (scenario.Sweep.RunContext parallelism; 0 = all cores). Results
	// are byte-identical at any value.
	PointParallelism int
	// RunParallelism is the internal fan-out width of synchronous
	// /v1/run and /v1/runall executions (0 = all cores).
	RunParallelism int
	// CacheEntries bounds the content-addressed result cache (LRU).
	// Values ≤ 0 select the default of 256; there is no unbounded
	// mode — pass a large bound if eviction should be effectively off.
	CacheEntries int
	// CacheMaxBytes additionally bounds the cache by total body bytes
	// (0 = entry bound only). Eviction is LRU on whichever bound trips.
	CacheMaxBytes int64
	// Store, when non-nil, backs the result cache and the sweep jobs
	// with a persistent content-addressed store: cache misses read
	// through to disk, completed results write through, and re-submitted
	// sweeps are served from blobs across restarts.
	Store *cas.Store
	// Fabric, when non-nil, executes sweep jobs through the distributed
	// coordinator instead of the in-process engine, and mounts the
	// fabric worker endpoints (/v1/workers/*, /v1/shards/*).
	Fabric *fabric.Coordinator
	// MaxJobs bounds the job store: once exceeded, the oldest terminal
	// jobs (done, failed, cancelled) are pruned — their ids 404 and
	// their hashes no longer dedup. Live jobs are never pruned. Values
	// ≤ 0 select the default of 1024.
	MaxJobs int
	// StatePath, when non-empty, persists job states there on Close and
	// restores them in New (interrupted jobs re-enqueue; done jobs keep
	// serving their results).
	StatePath string
	// MaxBodyBytes bounds every request body (http.MaxBytesReader);
	// oversized posts are rejected with 413 and counted in /metrics as
	// body_too_large. Values ≤ 0 select the default of 1 MiB.
	MaxBodyBytes int64
	// RunConcurrency bounds concurrent synchronous /v1/run evaluations
	// (default 4). Cache hits bypass the bound entirely; misses beyond
	// it wait FIFO in a queue of RunQueueDepth, and requests beyond
	// that are rejected with 429 + Retry-After.
	RunConcurrency int
	// RunQueueDepth bounds the FIFO wait queue behind RunConcurrency
	// (default 8). Queue occupancy drives the /healthz load level:
	// half-full is degraded (expensive specs shed), full is shedding.
	RunQueueDepth int
	// RunTimeout, when positive, is the per-request evaluation deadline
	// of /v1/run (the -run-timeout flag): the deadline propagates into
	// every dynamics step and churn event, an exceeded run answers 504,
	// and a client-supplied X-Run-Deadline-Ms header is clamped to it.
	// Zero means no server-side deadline (client disconnect still
	// aborts).
	RunTimeout time.Duration
	// ShedCost is the brownout watermark: once the load level leaves
	// ok, cache-missing specs whose Spec.CostEstimate exceeds it are
	// rejected with 429 before they queue, so cheap work and cached
	// reads keep flowing while expensive work is shed first. Values
	// ≤ 0 select the default of 4<<20 (≈ a large declarative run).
	ShedCost int64
}

// withDefaults resolves zero fields to the documented defaults.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RunConcurrency <= 0 {
		c.RunConcurrency = 4
	}
	if c.RunQueueDepth <= 0 {
		c.RunQueueDepth = 8
	}
	if c.ShedCost <= 0 {
		c.ShedCost = 4 << 20
	}
	return c
}

// Server is the topogamed HTTP service: the scenario engine behind a
// content-addressed result cache and an async job queue. Create with
// New, mount Handler, and Close for graceful shutdown.
type Server struct {
	cfg   Config
	cache *resultCache
	jobs  *jobManager
	mux   *http.ServeMux

	// admit gates synchronous /v1/run misses; draining flips once
	// BeginShutdown is called and makes every intake endpoint answer
	// 503 + Retry-After while in-flight work drains.
	admit    *admitter
	draining atomic.Bool

	// runSpec is the synchronous evaluation behind /v1/run and
	// /v1/runall — scenario.RunSpecContext in production. Overload
	// tests substitute a controllable runner before serving traffic.
	runSpec func(ctx context.Context, spec scenario.Spec) (*export.Table, error)

	runsTotal        atomic.Int64
	runErrors        atomic.Int64
	bodyTooLarge     atomic.Int64
	shedExpensive    atomic.Int64
	shedSaturated    atomic.Int64
	deadlineExceeded atomic.Int64
	disconnectAborts atomic.Int64
	shutdownRejected atomic.Int64
}

// New builds a Server (restoring persisted job state when
// Config.StatePath names an existing file) and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newResultCache(cfg.CacheEntries, cfg.CacheMaxBytes, cfg.Store),
		jobs:  newJobManager(cfg.Workers, cfg.QueueDepth, cfg.MaxJobs, cfg.PointParallelism),
		admit: newAdmitter(cfg.RunConcurrency, cfg.RunQueueDepth),
	}
	s.runSpec = func(ctx context.Context, spec scenario.Spec) (*export.Table, error) {
		return scenario.RunSpecContext(ctx, spec, scenario.Params{Parallelism: cfg.RunParallelism})
	}
	s.jobs.store = cfg.Store
	if cfg.Fabric != nil {
		s.jobs.runner = func(ctx context.Context, sw scenario.Sweep, progress func(done, total int)) (*export.Table, []scenario.FailedPoint, error) {
			j, err := cfg.Fabric.Submit(sw, scenario.Params{}, 0, progress)
			if err != nil {
				return nil, nil, err
			}
			// Wait cancels the fabric job on ctx cancellation and
			// returns context.Canceled, so the job manager's existing
			// cancel/drain handling applies unchanged. Failures carries
			// the quarantine report of a partially-failed job.
			table, err := j.Wait(ctx)
			return table, j.Failures(), err
		}
	}
	if cfg.StatePath != "" {
		if err := s.jobs.loadState(cfg.StatePath); err != nil {
			// The manager's workers are already parked on the queue;
			// drain them so a failed New does not leak goroutines.
			_ = s.jobs.close(context.Background())
			return nil, err
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/runall", s.handleRunAll)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Fabric != nil {
		mux.HandleFunc("POST /v1/workers/register", s.handleWorkerRegister)
		mux.HandleFunc("POST /v1/workers/{id}/heartbeat", s.handleWorkerHeartbeat)
		mux.HandleFunc("GET /v1/shards/next", s.handleShardNext)
		mux.HandleFunc("POST /v1/shards/{id}/result", s.handleShardResult)
	}
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler for the /v1 API. Every request body
// is capped at Config.MaxBodyBytes before it reaches a handler, so no
// POST — spec, sweep, or shard result — can balloon memory; handlers
// surface the overflow as 413.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		s.mux.ServeHTTP(w, r)
	})
}

// BeginShutdown stops intake without waiting for anything: every
// /v1/run, /v1/runall and /v1/sweep submission from here on is
// rejected with 503 + Retry-After (counted as shutdown_rejected) while
// requests and jobs already in flight keep draining. Call it as the
// first step of graceful shutdown — before http.Server.Shutdown — so
// requests that slip in during the listener drain are turned away
// instead of starting fresh work. Idempotent; Close calls it too.
func (s *Server) BeginShutdown() {
	s.draining.Store(true)
}

// Close gracefully shuts the server down: intake stops (BeginShutdown),
// in-flight jobs drain (until ctx expires, after which they are
// cancelled and awaited), and — when configured — job states persist to
// Config.StatePath. The HTTP listener is the caller's to close
// (http.Server.Shutdown); call Close after it.
func (s *Server) Close(ctx context.Context) error {
	s.BeginShutdown()
	drainErr := s.jobs.close(ctx)
	if s.cfg.StatePath != "" {
		if err := s.jobs.saveState(s.cfg.StatePath); err != nil {
			return errors.Join(drainErr, err)
		}
	}
	return drainErr
}

// errorDoc is the JSON error envelope of every non-2xx response.
type errorDoc struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorDoc{Error: err.Error()})
}

// bodyError maps a request-body read/decode failure to its response:
// 413 (counted as body_too_large) when the MaxBodyBytes cap tripped,
// 400 otherwise.
func (s *Server) bodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.bodyTooLarge.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

func writeDoc(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// requestOverrides folds the ?quick and ?seed query parameters into a
// spec, mirroring the topogame CLI flags, so the cache key covers them.
func requestOverrides(r *http.Request, spec *scenario.Spec) error {
	q := r.URL.Query()
	if v := q.Get("quick"); v != "" {
		quick, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("serve: bad quick=%q: %w", v, err)
		}
		spec.Quick = spec.Quick || quick
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("serve: bad seed=%q: %w", v, err)
		}
		spec.Seed = seed
	}
	return nil
}

// runCached executes a spec through the content-addressed cache and
// returns (body, hash, hit). The body is the rendered table JSON; on a
// hit it is the exact bytes of the first response.
func (s *Server) runCached(ctx context.Context, spec scenario.Spec) ([]byte, string, bool, error) {
	hash, err := spec.Hash()
	if err != nil {
		return nil, "", false, err
	}
	if body, ok := s.cache.get(hash); ok {
		return body, hash, true, nil
	}
	body, err := s.runMiss(ctx, spec, hash)
	return body, hash, false, err
}

// runMiss executes a cache-missing spec and installs the rendered body
// (the caller has already probed the cache for hash). A run cut short
// by ctx (deadline or disconnect) returns the ctx error verbatim, is
// not counted as a run error, and — critically — is never cached, so an
// aborted evaluation cannot poison the cache with a partial result.
func (s *Server) runMiss(ctx context.Context, spec scenario.Spec, hash string) ([]byte, error) {
	s.runsTotal.Add(1)
	table, err := s.runSpec(ctx, spec)
	if err != nil {
		if ctx.Err() == nil {
			s.runErrors.Add(1)
		}
		return nil, err
	}
	var buf bytes.Buffer
	if err := table.WriteJSON(&buf); err != nil {
		s.runErrors.Add(1)
		return nil, err
	}
	body := buf.Bytes()
	s.cache.put(hash, body)
	return body, nil
}

// rejectDraining answers 503 + Retry-After when shutdown has begun;
// callers return immediately on true. Jobs and requests already in
// flight are unaffected — only new intake is turned away.
func (s *Server) rejectDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	s.shutdownRejected.Add(1)
	w.Header().Set("Retry-After", "5")
	writeError(w, http.StatusServiceUnavailable,
		errors.New("serve: shutting down; not accepting new work"))
	return true
}

// runRequestContext derives the evaluation context for one /v1/run
// request: the request context (so a client disconnect aborts the run)
// bounded by the server's RunTimeout and, when the client sends
// X-Run-Deadline-Ms, by that too — the client deadline is clamped to
// the server's, never extending it.
func (s *Server) runRequestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	timeout := s.cfg.RunTimeout
	if h := r.Header.Get("X-Run-Deadline-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("serve: invalid X-Run-Deadline-Ms %q", h)
		}
		d := time.Duration(ms) * time.Millisecond
		if timeout == 0 || d < timeout {
			timeout = d
		}
	}
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		return ctx, cancel, nil
	}
	ctx, cancel := context.WithCancel(r.Context())
	return ctx, cancel, nil
}

// handleRun executes one scenario.Spec synchronously. The body is the
// same Spec JSON `topogame spec` reads; ?quick=1 and ?seed=N mirror the
// CLI flags. The response is the table JSON (`topogame spec -json`
// bytes) with X-Spec-Hash and X-Cache: hit|miss headers; repeated
// identical requests are served from the cache byte-identically.
//
// Overload contract: cache hits always answer. Misses pass the
// admission gate (RunConcurrency in flight, RunQueueDepth waiting FIFO;
// beyond that 429 + Retry-After), are shed with 429 when the server is
// degraded and the spec is expensive (Spec.CostEstimate > ShedCost),
// run under the per-request deadline (RunTimeout clamped further by
// X-Run-Deadline-Ms; exceeded ⇒ 504), and abort promptly when the
// client disconnects.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	spec, err := scenario.ReadSpec(r.Body)
	if err != nil {
		s.bodyError(w, err)
		return
	}
	if err := requestOverrides(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Cached reads bypass admission entirely: they cost nothing and must
	// keep flowing even when the server is shedding.
	if body, ok := s.cache.get(hash); ok {
		s.serveRunBody(w, hash, true, body)
		return
	}
	// Brownout: under load, reject expensive work before it queues.
	if s.loadLevel() != levelOK && spec.CostEstimate() > s.cfg.ShedCost {
		s.shedExpensive.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			errors.New("serve: shedding expensive runs under load; retry later"))
		return
	}
	release, err := s.admit.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errSaturated) {
			s.shedSaturated.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		// The client went away while queued; nobody is listening.
		s.disconnectAborts.Add(1)
		return
	}
	defer release()
	ctx, cancel, err := s.runRequestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	body, err := s.runMiss(ctx, spec, hash)
	switch {
	case err == nil:
		s.serveRunBody(w, hash, false, body)
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineExceeded.Add(1)
		writeError(w, http.StatusGatewayTimeout,
			fmt.Errorf("serve: run exceeded its deadline: %w", err))
	case errors.Is(err, context.Canceled):
		// Client disconnect mid-run: the evaluation aborted at its next
		// dynamics step and nothing was cached.
		s.disconnectAborts.Add(1)
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

func (s *Server) serveRunBody(w http.ResponseWriter, hash string, hit bool, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Spec-Hash", hash)
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	_, _ = w.Write(body)
}

// runAllRequest is the body of POST /v1/runall.
type runAllRequest struct {
	// IDs are catalog entries to run; empty means the whole catalog.
	IDs []string `json:"ids,omitempty"`
	// Quick and Seed mirror the topogame run flags.
	Quick bool   `json:"quick,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
}

// handleRunAll executes catalog entries in order and streams a JSON
// array of their tables (export.JSONStream — byte-identical to
// `topogame run -json`), flushing after each table so clients see
// results as they complete. Every id goes through the same
// content-addressed cache as /v1/run.
func (s *Server) handleRunAll(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	var req runAllRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		// An empty body is the zero request: the whole catalog at paper
		// defaults (`curl -X POST .../v1/runall` with no -d).
		s.bodyError(w, err)
		return
	}
	ids := req.IDs
	if len(ids) == 0 {
		ids = scenario.IDs()
	}
	specs := make([]scenario.Spec, len(ids))
	for i, id := range ids {
		spec, err := scenario.CatalogSpec(id)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		spec.Quick = spec.Quick || req.Quick
		if req.Seed != 0 {
			spec.Seed = req.Seed
		}
		specs[i] = spec
	}
	w.Header().Set("Content-Type", "application/json")
	flusher, _ := w.(http.Flusher)
	stream := export.NewJSONStream(w)
	for i, spec := range specs {
		body, _, _, err := s.runCached(r.Context(), spec)
		if err != nil {
			// Headers are sent once the first table streams; all we can
			// do mid-stream is abort the connection so the client sees a
			// truncated (invalid) document rather than a silent success.
			if stream.Err() == nil && i == 0 {
				writeError(w, http.StatusUnprocessableEntity, err)
				return
			}
			panic(http.ErrAbortHandler)
		}
		table, uerr := export.ParseTableJSON(body)
		if uerr != nil {
			panic(http.ErrAbortHandler)
		}
		if err := stream.Write(table); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = stream.Close()
}

// handleSweep submits a scenario.Sweep as an async job. The body is the
// same Sweep JSON `topogame sweep` reads; ?quick=1 folds quick mode
// into the base spec (and therefore the job's hash). A sweep whose
// canonical hash matches a queued, running or done job dedups onto it
// (200); otherwise the job is queued (202).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	sw, err := scenario.ReadSweep(r.Body)
	if err != nil {
		s.bodyError(w, err)
		return
	}
	if err := requestOverrides(r, &sw.Base); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("seed") != "" && len(sw.Seeds) > 0 {
		// Same guard as the topogame CLI: the seeds axis owns per-point
		// seeding, so a seed override would be silently ignored.
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: sweep has a seeds axis; ?seed would be ambiguous"))
		return
	}
	hash, err := sw.Hash()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	j, deduped, err := s.jobs.submit(sw, hash)
	if err != nil {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	status := http.StatusAccepted
	if deduped {
		status = http.StatusOK
		w.Header().Set("X-Job-Dedup", "true")
	}
	writeDoc(w, status, j.snapshot())
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeDoc(w, http.StatusOK, s.jobs.list())
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	writeDoc(w, http.StatusOK, j.snapshot())
}

// handleJobResult serves exactly the result table JSON of a done job —
// the bytes `topogame sweep -json` would print for the same sweep.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	doc := j.snapshot()
	if doc.State != JobDone {
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: job %s is %s, result available once done", doc.ID, doc.State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sweep-Hash", doc.Hash)
	_, _ = w.Write(doc.Result)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	if !s.jobs.requestCancel(j, "cancelled by request") {
		doc := j.snapshot()
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: job %s is already %s", doc.ID, doc.State))
		return
	}
	writeDoc(w, http.StatusOK, j.snapshot())
}

// catalogEntryDoc is one /v1/catalog element.
type catalogEntryDoc struct {
	ID          string        `json:"id"`
	Description string        `json:"description"`
	Spec        scenario.Spec `json:"spec"`
}

// handleCatalog lists the experiment registry: every id with its
// description and canonical (normalized) spec, ready to POST back to
// /v1/run.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	ids := scenario.IDs()
	docs := make([]catalogEntryDoc, 0, len(ids))
	for _, id := range ids {
		desc, err := scenario.Describe(id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		spec, err := scenario.CatalogSpec(id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		docs = append(docs, catalogEntryDoc{ID: id, Description: desc, Spec: spec.Normalize()})
	}
	writeDoc(w, http.StatusOK, docs)
}

// handleWorkerRegister admits a fabric worker and returns its id and
// lease. An empty body registers an unnamed worker.
func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var req fabric.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.bodyError(w, err)
		return
	}
	info := s.cfg.Fabric.Register(req.Name)
	writeDoc(w, http.StatusOK, fabric.RegisterResponse{
		WorkerID:    info.ID,
		LeaseMillis: info.Lease.Milliseconds(),
	})
}

// handleWorkerHeartbeat extends a worker's lease; 410 Gone tells a
// forgotten worker to re-register.
func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	if err := s.cfg.Fabric.Heartbeat(r.PathValue("id")); err != nil {
		writeError(w, http.StatusGone, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleShardNext hands the polling worker the next shard: 200 with
// the shard JSON, 204 when the queue is empty, 410 when the worker is
// unknown.
func (s *Server) handleShardNext(w http.ResponseWriter, r *http.Request) {
	shard, err := s.cfg.Fabric.NextShard(r.URL.Query().Get("worker"))
	if err != nil {
		writeError(w, http.StatusGone, err)
		return
	}
	if shard == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeDoc(w, http.StatusOK, shard)
}

// handleShardResult accepts a worker's shard results. Duplicate
// completions are 204 no-ops (idempotent by design); malformed or
// unknown submissions are 400.
func (s *Server) handleShardResult(w http.ResponseWriter, r *http.Request) {
	var req fabric.CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.bodyError(w, err)
		return
	}
	err := s.cfg.Fabric.CompleteShard(req.WorkerID, r.PathValue("id"),
		fabric.ShardResult{Results: req.Results, Error: req.Error, ErrorIndex: req.ErrorIndex})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// healthDoc is the /healthz body. Status is the load level: "ok",
// "degraded" (the /v1/run wait queue hit its half-full watermark —
// expensive specs are being shed) or "shedding" (the queue is full, or
// shutdown has begun — only cached reads flow). The endpoint always
// answers 200: it reports capacity, not liveness failure.
type healthDoc struct {
	Status string   `json:"status"`
	Jobs   jobStats `json:"jobs"`
}

// loadLevel is the server's current overload state — the admission
// gate's occupancy, overridden by shedding once shutdown begins.
func (s *Server) loadLevel() string {
	if s.draining.Load() {
		return levelShedding
	}
	return s.admit.level()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeDoc(w, http.StatusOK, healthDoc{Status: s.loadLevel(), Jobs: s.jobs.stats()})
}

// metricsDoc is the flat expvar-style counter set served by /metrics.
// The fabric and store sections only appear when configured (nil
// embedded pointers marshal as absent fields).
type metricsDoc struct {
	cacheStats
	jobStats
	*fabric.Counters
	*cas.Stats
	RunsTotal        int64 `json:"runs_total"`
	RunErrors        int64 `json:"run_errors"`
	BodyTooLarge     int64 `json:"body_too_large"`
	ShedExpensive    int64 `json:"shed_expensive"`
	ShedSaturated    int64 `json:"shed_saturated"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	DisconnectAborts int64 `json:"disconnect_aborts"`
	ShutdownRejected int64 `json:"shutdown_rejected"`
}

// Metrics returns the current counter snapshot (also served as JSON by
// GET /metrics): cache hits/misses/evictions, synchronous runs, job
// counts by state, worker utilization, and — when configured — the
// fabric and content store counters. Keys match the /metrics JSON
// field names; the doc is flat, so the round-trip below cannot lose a
// counter and new counters appear here automatically.
func (s *Server) Metrics() map[string]int64 {
	blob, err := json.Marshal(s.metricsDoc())
	if err != nil {
		return nil
	}
	out := make(map[string]int64)
	_ = json.Unmarshal(blob, &out)
	return out
}

func (s *Server) metricsDoc() metricsDoc {
	doc := metricsDoc{
		cacheStats:       s.cache.stats(),
		jobStats:         s.jobs.stats(),
		RunsTotal:        s.runsTotal.Load(),
		RunErrors:        s.runErrors.Load(),
		BodyTooLarge:     s.bodyTooLarge.Load(),
		ShedExpensive:    s.shedExpensive.Load(),
		ShedSaturated:    s.shedSaturated.Load(),
		DeadlineExceeded: s.deadlineExceeded.Load(),
		DisconnectAborts: s.disconnectAborts.Load(),
		ShutdownRejected: s.shutdownRejected.Load(),
	}
	if s.cfg.Fabric != nil {
		st := s.cfg.Fabric.Stats()
		doc.Counters = &st
	}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		doc.Stats = &st
	}
	return doc
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeDoc(w, http.StatusOK, s.metricsDoc())
}
