package cas

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// h derives a syntactically valid content hash from a label. Keys
// address the spec that produced a blob, not the blob's bytes — the
// store verifies reads against the checksum recorded at write time,
// never against the key — so tests can use arbitrary labels.
func h(label string) string {
	sum := sha256.Sum256([]byte(label))
	return fmt.Sprintf("sha256:%x", sum)
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte(`{"row":["1","2"]}`)
	if err := s.Put("point", h("a"), blob); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("point", h("a"))
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("Get returned %q, want %q", got, blob)
	}
	if _, ok, _ := s.Get("point", h("missing")); ok {
		t.Error("Get found a never-stored key")
	}
	if _, ok, _ := s.Get("run", h("a")); ok {
		t.Error("namespaces leaked: run/<hash> found after storing point/<hash>")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Puts != 1 || st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPutIsWriteOnceIdempotent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("point", h("a"), []byte("first")); err != nil {
		t.Fatal(err)
	}
	// A second put under the same content address is a no-op: content
	// addressing guarantees the bytes are the same, so nothing is
	// rewritten (idempotent shard completion relies on this).
	if err := s.Put("point", h("a"), []byte("first")); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Get("point", h("a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Fatalf("blob changed to %q after duplicate put", got)
	}
	if st := s.Stats(); st.DupPuts != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBadKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ ns, hash string }{
		{"point", "sha256:short"},
		{"point", "md5:" + strings.Repeat("ab", 32)},
		{"../escape", h("a")},
		{"UPPER", h("a")},
		{"", h("a")},
	} {
		if err := s.Put(tc.ns, tc.hash, []byte("x")); err == nil {
			t.Errorf("Put(%q, %q) accepted a bad key", tc.ns, tc.hash)
		}
	}
}

// TestReopenServesBlobs is the persistence half of the acceptance
// criterion: a store reopened from disk serves every blob without
// re-execution.
func TestReopenServesBlobs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put("point", h(fmt.Sprint(i)), []byte(fmt.Sprintf("blob-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 20 {
		t.Fatalf("reopened store has %d entries, want 20", s2.Len())
	}
	for i := 0; i < 20; i++ {
		got, ok, err := s2.Get("point", h(fmt.Sprint(i)))
		if err != nil || !ok {
			t.Fatalf("blob %d after reopen: ok=%v err=%v", i, ok, err)
		}
		if want := fmt.Sprintf("blob-%d", i); string(got) != want {
			t.Fatalf("blob %d = %q, want %q", i, got, want)
		}
	}
}

// TestOpenAdoptsUnindexedBlobs simulates a crash between the blob
// rename and the index rewrite: the blob on disk is the truth and must
// be adopted.
func TestOpenAdoptsUnindexedBlobs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("point", h("indexed"), []byte("kept")); err != nil {
		t.Fatal(err)
	}
	// Plant a blob directly, bypassing the index.
	orphan := h("orphan")
	hex := strings.TrimPrefix(orphan, "sha256:")
	path := filepath.Join(dir, "blobs", "point", hex[:2], hex)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("adopted"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Get("point", orphan)
	if err != nil || !ok {
		t.Fatalf("orphan blob not adopted: ok=%v err=%v", ok, err)
	}
	if string(got) != "adopted" {
		t.Fatalf("orphan blob = %q", got)
	}
	if s2.Len() != 2 {
		t.Fatalf("store has %d entries, want 2", s2.Len())
	}
}

// TestOpenSurvivesCorruptIndex: the index is a cache over the blob
// tree, so garbage in it must not fail Open or lose blobs.
func TestOpenSurvivesCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("point", h("a"), []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexFile), []byte(`{"entries": [{"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with corrupt index: %v", err)
	}
	got, ok, err := s2.Get("point", h("a"))
	if err != nil || !ok || string(got) != "survives" {
		t.Fatalf("blob lost behind corrupt index: %q ok=%v err=%v", got, ok, err)
	}
}

// blobFile is the on-disk path Put renames a blob into, mirrored here
// so tests can corrupt state behind the store's back.
func blobFile(dir, ns, hash string) string {
	hex := strings.TrimPrefix(hash, "sha256:")
	return filepath.Join(dir, "blobs", ns, hex[:2], hex)
}

// TestGetQuarantinesCorruptBlob: bit rot (or tampering) under an
// indexed key must read as a miss, move the corpse to corrupt/, and
// leave the key writable again so the content can be regenerated.
func TestGetQuarantinesCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("intended content")
	if err := s.Put("point", h("victim"), blob); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(blobFile(dir, "point", h("victim")), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("point", h("victim"))
	if err != nil || ok {
		t.Fatalf("corrupt blob served: %q ok=%v err=%v", got, ok, err)
	}
	corpse := filepath.Join(dir, "corrupt", "point-"+strings.TrimPrefix(h("victim"), "sha256:"))
	if b, err := os.ReadFile(corpse); err != nil || string(b) != "garbage" {
		t.Fatalf("corpse not preserved under corrupt/: %q err=%v", b, err)
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats after quarantine = %+v", st)
	}
	// The key is a plain miss now: regenerating the content works.
	if err := s.Put("point", h("victim"), blob); err != nil {
		t.Fatal(err)
	}
	got, ok, err = s.Get("point", h("victim"))
	if err != nil || !ok || !bytes.Equal(got, blob) {
		t.Fatalf("regenerated blob: %q ok=%v err=%v", got, ok, err)
	}
	// The quarantine was persisted: a reopened store agrees.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := s2.Get("point", h("victim")); !ok || !bytes.Equal(got, blob) {
		t.Fatalf("reopened store lost regenerated blob: %q ok=%v", got, ok)
	}
}

// TestPutFaultTornWrite drives the chaos seam: a torn write (truncation
// that survives the rename) lands on disk with a mismatched checksum
// record, so the first read quarantines it instead of serving it.
func TestPutFaultTornWrite(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("full content that the writer intended")
	s.SetPutFault(func(ns, hash string, b []byte) []byte { return b[:len(b)/2] })
	if err := s.Put("point", h("torn"), blob); err != nil {
		t.Fatal(err)
	}
	s.SetPutFault(nil)
	if _, ok, err := s.Get("point", h("torn")); ok || err != nil {
		t.Fatalf("torn blob served: ok=%v err=%v", ok, err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("stats = %+v, want 1 quarantine", st)
	}
	// The healthy rewrite round-trips.
	if err := s.Put("point", h("torn"), blob); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := s.Get("point", h("torn")); err != nil || !ok || !bytes.Equal(got, blob) {
		t.Fatalf("rewrite: %q ok=%v err=%v", got, ok, err)
	}
}

// TestOpenCrashRecovery simulates a crash between the blob rename and
// the index fsync, with temp debris left behind: the unindexed blob is
// adopted (with a checksum, so it stays verified), the index entry
// whose blob never landed is dropped, and stale tmp files are cleared.
func TestOpenCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("point", h("survivor"), []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	// Index ahead of blobs: an indexed entry whose blob vanished.
	if err := s.Put("point", h("vanished"), []byte("vanished")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(blobFile(dir, "point", h("vanished"))); err != nil {
		t.Fatal(err)
	}
	// Blobs ahead of index: a blob that landed but the index rewrite
	// never did.
	orphanPath := blobFile(dir, "point", h("orphan"))
	if err := os.MkdirAll(filepath.Dir(orphanPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orphanPath, []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Temp debris from the crashed writes.
	for _, name := range []string{"blob-crashed", "index-crashed"} {
		if err := os.WriteFile(filepath.Join(dir, "tmp", name), []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, err := s2.Get("point", h("survivor")); err != nil || !ok || string(got) != "survivor" {
		t.Fatalf("survivor: %q ok=%v err=%v", got, ok, err)
	}
	if got, ok, err := s2.Get("point", h("orphan")); err != nil || !ok || string(got) != "orphan" {
		t.Fatalf("orphan not adopted: %q ok=%v err=%v", got, ok, err)
	}
	if s2.Has("point", h("vanished")) {
		t.Error("dangling index entry survived reconciliation")
	}
	if s2.Len() != 2 {
		t.Fatalf("store has %d entries, want 2", s2.Len())
	}
	ents, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("tmp debris not cleared: %d files remain", len(ents))
	}
	// Adopted blobs are covered by verification: corrupt the orphan and
	// the next read quarantines it.
	if err := os.WriteFile(orphanPath, []byte("rotted"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s2.Get("point", h("orphan")); ok || err != nil {
		t.Fatalf("rotted adopted blob served: ok=%v err=%v", ok, err)
	}
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Errorf("stats = %+v, want 1 quarantine", st)
	}
}

func TestPlacementMetadata(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing([]string{"node-a", "node-b", "node-c"}, 0)
	s.SetRing(ring)
	if err := s.Put("point", h("a"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	owner := s.Owner("point", h("a"))
	if owner == "" {
		t.Fatal("no owner recorded with a ring installed")
	}
	if want := ring.Owner("point/" + h("a")); owner != want {
		t.Fatalf("store owner %q, ring owner %q", owner, want)
	}
	// The owner is persisted in the index and survives reopen.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range s2.Entries() {
		if e.Hash == h("a") && e.Owner != owner {
			t.Fatalf("persisted owner %q, want %q", e.Owner, owner)
		}
	}
}

func TestConcurrentPutsAndGets(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				// All workers fight over the same 16 keys: every put
				// past the first per key is a duplicate no-op.
				hash := h(fmt.Sprint(i))
				if err := s.Put("point", hash, []byte(fmt.Sprintf("blob-%d", i))); err != nil {
					t.Error(err)
					return
				}
				got, ok, err := s.Get("point", hash)
				if err != nil || !ok {
					t.Errorf("get %d: ok=%v err=%v", i, ok, err)
					return
				}
				if want := fmt.Sprintf("blob-%d", i); string(got) != want {
					t.Errorf("get %d = %q", i, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 16 {
		t.Fatalf("store has %d entries, want 16", s.Len())
	}
}
