// Command topogamed serves the scenario engine over HTTP: synchronous
// spec execution behind a content-addressed result cache, asynchronous
// sweep jobs drained by a bounded worker pool, the experiment catalog,
// and operational counters. See internal/serve for the API.
//
//	topogamed -addr :8080 -workers 4 -state jobs.json
//
//	curl localhost:8080/v1/catalog
//	curl -X POST localhost:8080/v1/run -d '{"experiment": "e4-poa", "quick": true}'
//	curl -X POST localhost:8080/v1/sweep -d @grid.json
//	curl localhost:8080/v1/jobs/job-1
//	curl localhost:8080/metrics
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops,
// in-flight jobs drain (bounded by -drain-timeout, after which they
// are cancelled at the next grid-point boundary), and job states
// persist to -state for the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "selfishnet/internal/experiments" // register the 13 paper runners
	"selfishnet/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "topogamed:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until ctx is cancelled (signal) and
// shutdown completes. ready, when non-nil, receives the bound address
// once the listener accepts connections — the test hook for -addr :0.
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("topogamed", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 2, "async sweep job workers")
	queue := fs.Int("queue", 256, "max queued jobs (submissions beyond are rejected)")
	cache := fs.Int("cache", 256, "result cache entries (LRU)")
	maxJobs := fs.Int("max-jobs", 1024, "job retention bound (oldest finished jobs pruned beyond it)")
	runPar := fs.Int("run-par", 0, "internal fan-out of synchronous runs (0 = all cores)")
	pointPar := fs.Int("point-par", 0, "grid fan-out inside one sweep job (0 = all cores)")
	state := fs.String("state", "", "persist job states to this file across restarts")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	srv, err := serve.New(serve.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cache,
		MaxJobs:          *maxJobs,
		RunParallelism:   *runPar,
		PointParallelism: *pointPar,
		StatePath:        *state,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	log.Printf("topogamed: listening on %s (workers %d, cache %d entries)", ln.Addr(), *workers, *cache)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Listener failed outright; still drain whatever got submitted.
		closeCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		return errors.Join(err, srv.Close(closeCtx))
	case <-ctx.Done():
	}

	log.Printf("topogamed: shutting down (drain timeout %s)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("topogamed: http shutdown: %v", err)
	}
	if err := srv.Close(shutdownCtx); err != nil {
		return err
	}
	log.Printf("topogamed: drained cleanly")
	return nil
}
