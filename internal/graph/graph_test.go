package graph

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"selfishnet/internal/rng"
)

func mustDigraph(t *testing.T, n int) *Digraph {
	t.Helper()
	g, err := NewDigraph(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustArc(t *testing.T, g *Digraph, from, to int, w float64) {
	t.Helper()
	if err := g.AddArc(from, to, w); err != nil {
		t.Fatal(err)
	}
}

func TestDigraphBasics(t *testing.T) {
	g := mustDigraph(t, 3)
	mustArc(t, g, 0, 1, 2.5)
	if !g.HasArc(0, 1) || g.HasArc(1, 0) {
		t.Fatal("arc direction wrong")
	}
	w, ok := g.Weight(0, 1)
	if !ok || w != 2.5 {
		t.Fatalf("Weight = %f, %v", w, ok)
	}
	if g.OutDegree(0) != 1 || g.OutDegree(1) != 0 {
		t.Fatal("out-degrees wrong")
	}
	if g.ArcCount() != 1 {
		t.Fatalf("ArcCount = %d", g.ArcCount())
	}
	if err := g.RemoveArc(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.HasArc(0, 1) {
		t.Fatal("arc not removed")
	}
}

func TestDigraphValidation(t *testing.T) {
	if _, err := NewDigraph(0); err == nil {
		t.Error("n=0 should error")
	}
	g := mustDigraph(t, 2)
	if err := g.AddArc(0, 5, 1); err == nil {
		t.Error("out-of-range arc should error")
	}
	if err := g.AddArc(0, 0, 1); err == nil {
		t.Error("self-loop should error")
	}
	if err := g.AddArc(0, 1, -1); err == nil {
		t.Error("negative weight should error")
	}
	if err := g.AddArc(0, 1, math.NaN()); err == nil {
		t.Error("NaN weight should error")
	}
	if g.HasArc(-1, 0) {
		t.Error("HasArc out of range should be false")
	}
}

func TestAddEdge(t *testing.T) {
	g := mustDigraph(t, 2)
	if err := g.AddEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if !g.HasArc(0, 1) || !g.HasArc(1, 0) {
		t.Fatal("AddEdge should add both arcs")
	}
}

func TestDijkstraLineGraph(t *testing.T) {
	// 0 →1→ 1 →2→ 2 →3→ 3, plus shortcut 0→3 weight 10.
	g := mustDigraph(t, 4)
	mustArc(t, g, 0, 1, 1)
	mustArc(t, g, 1, 2, 2)
	mustArc(t, g, 2, 3, 3)
	mustArc(t, g, 0, 3, 10)
	dist, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 3, 6}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("dist[%d] = %f, want %f", i, dist[i], w)
		}
	}
	// Reverse direction is unreachable.
	back, err := Dijkstra(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back[0], 1) {
		t.Errorf("dist from 3 to 0 = %f, want +Inf", back[0])
	}
}

func TestDijkstraSourceValidation(t *testing.T) {
	g := mustDigraph(t, 2)
	if _, err := Dijkstra(g, -1); err == nil {
		t.Error("negative source should error")
	}
	if _, err := Dijkstra(g, 2); err == nil {
		t.Error("out-of-range source should error")
	}
}

// randomGraph builds a random digraph with the given size and arc
// probability; weights are uniform in [0.1, 10).
func randomGraph(r *rng.RNG, n int, p float64) *Digraph {
	g, _ := NewDigraph(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && r.Bool(p) {
				_ = g.AddArc(i, j, r.Range(0.1, 10))
			}
		}
	}
	return g
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(20)
		g := randomGraph(r, n, 0.3)
		fw := FloydWarshall(g)
		for src := 0; src < n; src++ {
			dist, err := Dijkstra(g, src)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < n; j++ {
				dd, fd := dist[j], fw[src][j]
				if math.IsInf(dd, 1) != math.IsInf(fd, 1) {
					t.Fatalf("trial %d reachability mismatch at (%d,%d)", trial, src, j)
				}
				if !math.IsInf(dd, 1) && math.Abs(dd-fd) > 1e-9 {
					t.Fatalf("trial %d: dijkstra %f vs fw %f at (%d,%d)", trial, dd, fd, src, j)
				}
			}
		}
	}
}

func TestDijkstraHeapMatchesDense(t *testing.T) {
	// Force both code paths on the same adjacency and compare.
	r := rng.New(11)
	n := 60
	g := randomGraph(r, n, 0.1)
	for src := 0; src < n; src += 7 {
		dense := dijkstraDense(g, src)
		heap := dijkstraHeap(g, src)
		for j := range dense {
			if math.IsInf(dense[j], 1) != math.IsInf(heap[j], 1) {
				t.Fatalf("reachability mismatch at %d", j)
			}
			if !math.IsInf(dense[j], 1) && math.Abs(dense[j]-heap[j]) > 1e-9 {
				t.Fatalf("dense %f vs heap %f at %d", dense[j], heap[j], j)
			}
		}
	}
}

func TestLargeGraphUsesHeapPath(t *testing.T) {
	// n > 128 exercises the heap branch through the public API.
	g := mustDigraph(t, 200)
	for i := 0; i < 199; i++ {
		mustArc(t, g, i, i+1, 1)
	}
	dist, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[199] != 199 {
		t.Errorf("dist[199] = %f, want 199", dist[199])
	}
}

func TestBFSHops(t *testing.T) {
	g := mustDigraph(t, 5)
	mustArc(t, g, 0, 1, 5)
	mustArc(t, g, 1, 2, 5)
	mustArc(t, g, 0, 3, 5)
	hops, err := BFSHops(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 1, -1}
	for i, w := range want {
		if hops[i] != w {
			t.Errorf("hops[%d] = %d, want %d", i, hops[i], w)
		}
	}
	if _, err := BFSHops(g, 9); err == nil {
		t.Error("bad source should error")
	}
}

func TestTarjanSCC(t *testing.T) {
	// Two 2-cycles joined by a one-way arc, plus an isolated vertex.
	g := mustDigraph(t, 5)
	mustArc(t, g, 0, 1, 1)
	mustArc(t, g, 1, 0, 1)
	mustArc(t, g, 1, 2, 1)
	mustArc(t, g, 2, 3, 1)
	mustArc(t, g, 3, 2, 1)
	comps := TarjanSCC(g)
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3: %v", len(comps), comps)
	}
	sizes := make([]int, len(comps))
	for i, c := range comps {
		sizes[i] = len(c)
	}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 2 {
		t.Fatalf("component sizes = %v", sizes)
	}
	if StronglyConnected(g) {
		t.Error("graph is not strongly connected")
	}
}

func TestStronglyConnectedCycle(t *testing.T) {
	g := mustDigraph(t, 6)
	for i := 0; i < 6; i++ {
		mustArc(t, g, i, (i+1)%6, 1)
	}
	if !StronglyConnected(g) {
		t.Error("directed cycle must be strongly connected")
	}
}

func TestTarjanDeepChainNoOverflow(t *testing.T) {
	// A long path: would overflow a recursive implementation at ~1e5.
	n := 200_000
	g, err := NewDigraph(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		if err := g.AddArc(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	comps := TarjanSCC(g)
	if len(comps) != n {
		t.Fatalf("got %d components, want %d", len(comps), n)
	}
}

func TestQuickSCCPartition(t *testing.T) {
	// Property: SCCs partition the vertex set.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(15)
		g := randomGraph(r, n, 0.25)
		comps := TarjanSCC(g)
		seen := make([]bool, n)
		total := 0
		for _, c := range comps {
			for _, v := range c {
				if v < 0 || v >= n || seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickSCCMutualReachability(t *testing.T) {
	// Property: vertices share a component iff mutually reachable.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(10)
		g := randomGraph(r, n, 0.3)
		comps := TarjanSCC(g)
		compOf := make([]int, n)
		for ci, c := range comps {
			for _, v := range c {
				compOf[v] = ci
			}
		}
		fw := FloydWarshall(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				mutual := !math.IsInf(fw[i][j], 1) && !math.IsInf(fw[j][i], 1)
				if mutual != (compOf[i] == compOf[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDiameter(t *testing.T) {
	g := mustDigraph(t, 3)
	mustArc(t, g, 0, 1, 1)
	mustArc(t, g, 1, 2, 2)
	mustArc(t, g, 2, 0, 4)
	d, connected := Diameter(g)
	if !connected {
		t.Fatal("cycle should be connected")
	}
	if d != 6 {
		t.Errorf("diameter = %f, want 6 (2→1 path)", d)
	}
	_ = g.RemoveArc(2, 0)
	_, connected = Diameter(g)
	if connected {
		t.Error("after removing arc, graph should not be connected")
	}
}

// lineMetric is a trivial MetricLike for MST tests.
type lineMetric struct{ pos []float64 }

func (m lineMetric) N() int { return len(m.pos) }
func (m lineMetric) Distance(i, j int) float64 {
	return math.Abs(m.pos[i] - m.pos[j])
}

func TestPrimMSTOnLine(t *testing.T) {
	m := lineMetric{pos: []float64{0, 10, 1, 11, 2}}
	edges, err := PrimMST(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 4 {
		t.Fatalf("MST edge count = %d, want 4", len(edges))
	}
	total := 0.0
	for _, e := range edges {
		total += m.Distance(e[0], e[1])
	}
	// Optimal tree connects 0-2-4 (cost 1+1) and 1-3 (cost 1) and the two
	// groups via 4-1 (cost 8): total 11.
	if math.Abs(total-11) > 1e-12 {
		t.Errorf("MST weight = %f, want 11", total)
	}
}

func TestPrimMSTEmpty(t *testing.T) {
	if _, err := PrimMST(lineMetric{}); err == nil {
		t.Error("empty metric should error")
	}
}
