package construct

import (
	"math"
	"testing"

	"selfishnet/internal/core"
	"selfishnet/internal/nash"
)

func TestNewFigure1Structure(t *testing.T) {
	f, err := NewFigure1(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := f.Profile
	// Every peer except the first links to its left neighbor.
	for pi := 1; pi < 7; pi++ {
		if !p.HasLink(pi, pi-1) {
			t.Errorf("peer %d missing left link", pi)
		}
	}
	// Paper-odd peers (0-based even) link two to the right.
	for _, pi := range []int{0, 2, 4} {
		if !p.HasLink(pi, pi+2) {
			t.Errorf("peer %d missing right link to %d", pi, pi+2)
		}
	}
	// Paper-even peers have no right links.
	for _, pi := range []int{1, 3, 5} {
		for j := pi + 1; j < 7; j++ {
			if p.HasLink(pi, j) {
				t.Errorf("even peer %d has unexpected right link to %d", pi, j)
			}
		}
	}
	// Link count for odd n: (n-1) left + (n-1)/2 right.
	if got, want := p.LinkCount(), 6+3; got != want {
		t.Errorf("LinkCount = %d, want %d", got, want)
	}
	ev := core.NewEvaluator(f.Instance)
	if !ev.Connected(p) {
		t.Fatal("figure 1 topology must be strongly connected")
	}
}

func TestNewFigure1EvenBoundary(t *testing.T) {
	f, err := NewFigure1(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Boundary completion: last paper-odd peer (0-based 4) links to 5.
	if !f.Profile.HasLink(4, 5) {
		t.Error("boundary completion missing")
	}
	ev := core.NewEvaluator(f.Instance)
	if !ev.Connected(f.Profile) {
		t.Fatal("even-n topology must still be connected")
	}
}

func TestNewFigure1Validation(t *testing.T) {
	if _, err := NewFigure1(2, 4); err == nil {
		t.Error("n=2 should error")
	}
	if _, err := NewFigure1(5, 1); err == nil {
		t.Error("alpha=1 should error (degenerate line)")
	}
}

func TestFigure1IsNashLemma42(t *testing.T) {
	// Lemma 4.2: the topology is a Nash equilibrium for α ≥ 3.4.
	// Verified with the exact oracle for odd n.
	for _, tc := range []struct {
		n     int
		alpha float64
	}{
		{5, 3.4}, {7, 3.4}, {9, 3.4},
		{7, 4}, {9, 6}, {11, 10},
	} {
		f, err := NewFigure1(tc.n, tc.alpha)
		if err != nil {
			t.Fatal(err)
		}
		ev := core.NewEvaluator(f.Instance)
		ok, err := nash.IsNash(ev, f.Profile)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("n=%d α=%v: figure 1 not Nash (Lemma 4.2 violated)", tc.n, tc.alpha)
		}
	}
}

func TestFigure1SocialCostScaling(t *testing.T) {
	// Lemma 4.3: C(G) ∈ Θ(αn²). Check the stretch part dominates and
	// grows with n² within sane constants.
	const alpha = 4.0
	for _, n := range []int{7, 9, 11, 13} {
		f, err := NewFigure1(n, alpha)
		if err != nil {
			t.Fatal(err)
		}
		ev := core.NewEvaluator(f.Instance)
		sc := ev.SocialCost(f.Profile)
		an2 := alpha * float64(n) * float64(n)
		if sc.Term < 0.02*an2 {
			t.Errorf("n=%d: stretch cost %f too small vs αn² = %f", n, sc.Term, an2)
		}
		if sc.Term > 2*an2 {
			t.Errorf("n=%d: stretch cost %f too large vs αn² = %f", n, sc.Term, an2)
		}
		// Link cost is α · 3(n-1)/2 ∈ Θ(αn).
		wantLinks := alpha * 3 * float64(n-1) / 2
		if math.Abs(sc.Link-wantLinks) > 1e-9 {
			t.Errorf("n=%d: link cost %f, want %f", n, sc.Link, wantLinks)
		}
	}
}

func TestFigure1PoAGrowsWithAlpha(t *testing.T) {
	// Theorem 4.4: PoA = C(G)/C(OPT) ∈ Θ(min(α, n)). In the regime
	// n >> α, the ratio against the G̃ upper bound grows with α and stays
	// within constant factors of min(α, n).
	ratio := func(n int, alpha float64) float64 {
		f, err := NewFigure1(n, alpha)
		if err != nil {
			t.Fatal(err)
		}
		ev := core.NewEvaluator(f.Instance)
		return ev.SocialCost(f.Profile).Total() / OptimalLineCost(n, alpha)
	}
	const n = 41
	r4, r8, r16 := ratio(n, 4), ratio(n, 8), ratio(n, 16)
	if !(r4 > 1 && r8 > r4 && r16 > r8) {
		t.Errorf("ratios must increase in α: %f, %f, %f", r4, r8, r16)
	}
	// Θ(min(α,n)) with moderate constants: normalized ratios in a fixed
	// band across the grid.
	for _, tc := range []struct {
		alpha float64
		r     float64
	}{{4, r4}, {8, r8}, {16, r16}} {
		norm := tc.r / math.Min(tc.alpha, n)
		if norm < 0.08 || norm > 1.5 {
			t.Errorf("α=%v: ratio/min(α,n) = %f outside Θ band", tc.alpha, norm)
		}
	}
}

func TestOptimalLineStretchOne(t *testing.T) {
	f, err := NewFigure1(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(f.Instance)
	gTilde := OptimalLine(9)
	sc := ev.SocialCost(gTilde)
	// All 72 ordered pairs at stretch 1.
	if math.Abs(sc.Term-72) > 1e-9 {
		t.Errorf("G̃ stretch cost = %f, want 72", sc.Term)
	}
	if math.Abs(sc.Total()-OptimalLineCost(9, 4)) > 1e-9 {
		t.Errorf("OptimalLineCost mismatch: %f vs %f", sc.Total(), OptimalLineCost(9, 4))
	}
}

func TestLemma42Threshold(t *testing.T) {
	// Analytic root of (4α²−1)/(α²−1) = α+1 is (3+√13)/2 ≈ 3.3028; the
	// paper rounds up to 3.4.
	th := Lemma42Threshold(1e-10)
	want := (3 + math.Sqrt(13)) / 2
	if math.Abs(th-want) > 1e-6 {
		t.Errorf("threshold = %f, want %f", th, want)
	}
	if th > Figure1MinAlpha {
		t.Errorf("threshold %f exceeds the paper's 3.4", th)
	}
}

func TestLemma42HoldsBoundary(t *testing.T) {
	if Lemma42Holds(3.0) {
		t.Error("bound should fail at α=3.0")
	}
	if !Lemma42Holds(3.4) {
		t.Error("bound should hold at α=3.4 (the paper's constant)")
	}
	if !Lemma42Holds(10) {
		t.Error("bound should hold at α=10")
	}
	if Lemma42Holds(1) {
		t.Error("α ≤ 1 must be rejected")
	}
}

func TestLemma42BenefitBelowBound(t *testing.T) {
	// The exact series must stay below the paper's closed-form bound.
	for _, alpha := range []float64{3.4, 4, 6, 10} {
		benefit := Lemma42Benefit(alpha, 128)
		bound := Lemma42BenefitBound(alpha)
		if benefit >= bound {
			t.Errorf("α=%v: series %f ≥ bound %f", alpha, benefit, bound)
		}
		if benefit >= alpha+1 {
			t.Errorf("α=%v: benefit %f ≥ α+1, lemma conclusion fails", alpha, benefit)
		}
	}
}

func TestLemma42BenefitDiverges(t *testing.T) {
	// For α close to 1 the first denominator goes non-positive: the
	// series blows up, signaled by +Inf.
	if !math.IsInf(Lemma42Benefit(1.2, 32), 1) {
		t.Error("benefit at α=1.2 should be +Inf (denominator ≤ 0)")
	}
}
