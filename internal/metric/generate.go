package metric

import (
	"errors"
	"fmt"
	"math"

	"selfishnet/internal/rng"
)

// UniformPoints returns n points drawn uniformly from the dim-dimensional
// unit cube. Coinciding points are re-drawn (vanishingly unlikely), so the
// result is always a valid metric.
func UniformPoints(r *rng.RNG, n, dim int) (*Points, error) {
	if n <= 0 || dim <= 0 {
		return nil, fmt.Errorf("metric: invalid uniform generator args n=%d dim=%d", n, dim)
	}
	for attempt := 0; attempt < 16; attempt++ {
		pts := make([][]float64, n)
		for i := range pts {
			p := make([]float64, dim)
			for k := range p {
				p[k] = r.Float64()
			}
			pts[i] = p
		}
		s, err := NewPoints(pts)
		if err == nil {
			return s, nil
		}
	}
	return nil, errors.New("metric: could not draw distinct uniform points")
}

// ClusterSpec positions a cluster of Count points around Center, spaced
// equidistantly on a short segment of total length Diameter (the paper's
// "peers located equidistantly on a line" within each cluster).
type ClusterSpec struct {
	Center   []float64
	Count    int
	Diameter float64
}

// Clustered lays out the given clusters in a shared Euclidean space. The
// points of cluster c occupy indices [offset_c, offset_c + Count).
func Clustered(specs []ClusterSpec) (*Points, error) {
	if len(specs) == 0 {
		return nil, errors.New("metric: no clusters")
	}
	dim := len(specs[0].Center)
	var pts [][]float64
	for ci, spec := range specs {
		if len(spec.Center) != dim {
			return nil, fmt.Errorf("metric: cluster %d dimension mismatch", ci)
		}
		if spec.Count <= 0 {
			return nil, fmt.Errorf("metric: cluster %d has count %d", ci, spec.Count)
		}
		if spec.Diameter < 0 {
			return nil, fmt.Errorf("metric: cluster %d has negative diameter", ci)
		}
		for k := 0; k < spec.Count; k++ {
			p := append([]float64(nil), spec.Center...)
			if spec.Count > 1 {
				// Spread along the first axis, centered on the center.
				frac := float64(k)/float64(spec.Count-1) - 0.5
				p[0] += frac * spec.Diameter
			}
			pts = append(pts, p)
		}
	}
	return NewPoints(pts)
}

// ExponentialLine builds the 1-D instance of the paper's Figure 1: peer
// i (1-based in the paper) sits at position α^{i-1}/2 if i is odd and at
// α^{i-1} if i is even. Our peers are 0-based: peer index p corresponds
// to the paper's i = p+1.
//
// Distances grow exponentially to the right, which is what makes the
// selfishly stable topology socially terrible (Θ(αn²) social cost).
func ExponentialLine(n int, alpha float64) (*Points, error) {
	if n < 2 {
		return nil, fmt.Errorf("metric: exponential line needs n ≥ 2, got %d", n)
	}
	if alpha <= 2 {
		// Positions must strictly increase: peer i+1 at α^i/2 must lie
		// right of peer i at α^(i-1), which needs α > 2 (at α = 2 the
		// points coincide). The paper's regime is α ≥ 3.4 anyway.
		return nil, fmt.Errorf("metric: exponential line needs α > 2, got %v", alpha)
	}
	pos := make([]float64, n)
	for p := 0; p < n; p++ {
		i := p + 1 // paper's 1-based peer number
		x := math.Pow(alpha, float64(i-1))
		if i%2 == 1 {
			x /= 2
		}
		if math.IsInf(x, 0) {
			return nil, fmt.Errorf("metric: exponential line overflows float64 at peer %d (α=%v): use smaller n or α", i, alpha)
		}
		pos[p] = x
	}
	return Line(pos)
}

// Ring places n points evenly on a circle of the given radius in the
// plane. Ring metrics are a classic growth-bounded family.
func Ring(n int, radius float64) (*Points, error) {
	if n < 2 || radius <= 0 {
		return nil, fmt.Errorf("metric: invalid ring n=%d radius=%v", n, radius)
	}
	pts := make([][]float64, n)
	for i := range pts {
		theta := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = []float64{radius * math.Cos(theta), radius * math.Sin(theta)}
	}
	return NewPoints(pts)
}

// Grid places rows×cols points on the integer grid with the given cell
// spacing — a standard 2-dimensional growth-bounded metric.
func Grid(rows, cols int, spacing float64) (*Points, error) {
	if rows <= 0 || cols <= 0 || spacing <= 0 {
		return nil, fmt.Errorf("metric: invalid grid %dx%d spacing %v", rows, cols, spacing)
	}
	if rows*cols < 2 {
		return nil, errors.New("metric: grid needs at least 2 points")
	}
	pts := make([][]float64, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, []float64{float64(c) * spacing, float64(r) * spacing})
		}
	}
	return NewPoints(pts)
}

// ClusteredRandom draws clusters of points around k random centers in the
// unit square — a heavy-tailed, locality-rich workload resembling peers
// concentrated in ISPs or regions.
func ClusteredRandom(r *rng.RNG, n, k int, clusterRadius float64) (*Points, error) {
	if n <= 0 || k <= 0 || k > n {
		return nil, fmt.Errorf("metric: invalid clustered-random args n=%d k=%d", n, k)
	}
	if clusterRadius <= 0 {
		return nil, fmt.Errorf("metric: cluster radius %v must be positive", clusterRadius)
	}
	centers := make([][2]float64, k)
	for i := range centers {
		centers[i] = [2]float64{r.Float64(), r.Float64()}
	}
	for attempt := 0; attempt < 16; attempt++ {
		pts := make([][]float64, n)
		for i := range pts {
			c := centers[r.Intn(k)]
			pts[i] = []float64{
				c[0] + clusterRadius*r.Norm(),
				c[1] + clusterRadius*r.Norm(),
			}
		}
		s, err := NewPoints(pts)
		if err == nil {
			return s, nil
		}
	}
	return nil, errors.New("metric: could not draw distinct clustered points")
}
