package baseline

import (
	"math"
	"testing"

	"selfishnet/internal/bestresponse"
	"selfishnet/internal/core"
	"selfishnet/internal/metric"
	"selfishnet/internal/nash"
	"selfishnet/internal/opt"
)

func TestFabrikantHopCosts(t *testing.T) {
	inst, err := NewFabrikant(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(inst)
	// Path 0-1-2-3 built entirely by peer 0? No: each edge owned by its
	// left endpoint; undirected traversal makes it a path for everyone.
	p := core.NewProfile(4)
	_ = p.AddLink(0, 1)
	_ = p.AddLink(1, 2)
	_ = p.AddLink(2, 3)
	c := ev.PeerCost(p, 3)
	// Peer 3 owns no links: Link = 0; hop distances 1+2+3 = 6.
	if c.Link != 0 {
		t.Errorf("Link = %f, want 0", c.Link)
	}
	if math.Abs(c.Term-6) > 1e-9 {
		t.Errorf("Term = %f, want 6 (hop counts over undirected path)", c.Term)
	}
}

func TestFabrikantStarIsNashForAlphaAtLeast1(t *testing.T) {
	// Classic Fabrikant result: the star (each leaf buying its edge to
	// the center) is a Nash equilibrium for α ≥ 1.
	inst, err := NewFabrikant(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(inst)
	p := core.NewProfile(6)
	for leaf := 1; leaf < 6; leaf++ {
		_ = p.AddLink(leaf, 0)
	}
	ok, err := nash.IsNash(ev, p)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("leaf-bought star should be Nash at α=2")
	}
}

func TestFabrikantCliqueIsNashForSmallAlpha(t *testing.T) {
	// For α < 1 the clique is a Nash equilibrium: dropping an owned edge
	// saves α but adds ≥ 1 to one distance.
	inst, err := NewFabrikant(5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(inst)
	// Build the clique with each edge owned by its lower endpoint.
	p := core.NewProfile(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			_ = p.AddLink(i, j)
		}
	}
	ok, err := nash.IsNash(ev, p)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("clique should be Nash at α=0.5")
	}
}

func TestFabrikantCliqueNotNashForLargeAlpha(t *testing.T) {
	inst, err := NewFabrikant(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(inst)
	p := core.NewProfile(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			_ = p.AddLink(i, j)
		}
	}
	ok, err := nash.IsNash(ev, p)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("clique should not be Nash at α=3 (dropping an edge saves α > 1)")
	}
}

func TestUndirectedTraversalOnlyInFabrikant(t *testing.T) {
	// The same one-way link profile connects everyone in the undirected
	// game but not in the paper's directed game.
	space, err := metric.Uniform(3)
	if err != nil {
		t.Fatal(err)
	}
	directed, err := core.NewInstance(space, 1)
	if err != nil {
		t.Fatal(err)
	}
	undirected, err := NewFabrikantMetric(space, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewProfile(3)
	_ = p.AddLink(0, 1)
	_ = p.AddLink(0, 2)
	if core.NewEvaluator(directed).Connected(p) {
		t.Error("directed game should not be connected (1 cannot reach 0)")
	}
	if !core.NewEvaluator(undirected).Connected(p) {
		t.Error("undirected game should be connected")
	}
}

func TestSymmetric(t *testing.T) {
	p := core.NewProfile(3)
	_ = p.AddLink(0, 1)
	if Symmetric(p) {
		t.Error("one-way link is not symmetric")
	}
	_ = p.AddLink(1, 0)
	if !Symmetric(p) {
		t.Error("mutual links are symmetric")
	}
}

func TestPairwiseStableStar(t *testing.T) {
	// Bilateral game on a line, α large enough that no leaf pair wants a
	// direct edge: the symmetric chain should be pairwise stable.
	space, err := metric.Line([]float64{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewBilateral(space, 2)
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(inst)
	chain := opt.Chain(4)
	rep, err := PairwiseStable(ev, chain, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stable {
		t.Fatalf("chain should be pairwise stable: %+v", rep)
	}
}

func TestPairwiseUnstableMissingEdge(t *testing.T) {
	// With tiny α, distant endpoints both profit from a direct edge: the
	// chain has add violations.
	space, err := metric.Line([]float64{0, 1, 2, 10})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewBilateral(space, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(inst)
	rep, err := PairwiseStable(ev, opt.Chain(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	// On a collinear line overlay distance equals direct distance, so no
	// edge helps; move peer 3 off the line to create shortcuts.
	_ = rep
	space2, err := metric.NewPoints([][]float64{{0, 0}, {1, 0}, {2, 0}, {1, 5}})
	if err != nil {
		t.Fatal(err)
	}
	inst2, err := NewBilateral(space2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	ev2 := core.NewEvaluator(inst2)
	rep2, err := PairwiseStable(ev2, opt.Chain(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Stable || len(rep2.AddViolations) == 0 {
		t.Fatalf("expected add violations: %+v", rep2)
	}
}

func TestPairwiseDropViolation(t *testing.T) {
	// Full symmetric mesh with huge α: endpoints want to drop edges.
	space, err := metric.Line([]float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewBilateral(space, 50)
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(inst)
	mesh := opt.FullMesh(3)
	rep, err := PairwiseStable(ev, mesh, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stable || len(rep.DropViolations) == 0 {
		t.Fatalf("expected drop violations: %+v", rep)
	}
}

func TestPairwiseStableRejectsAsymmetric(t *testing.T) {
	space, err := metric.Line([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewBilateral(space, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(inst)
	p := core.NewProfile(2)
	_ = p.AddLink(0, 1)
	if _, err := PairwiseStable(ev, p, 0); err == nil {
		t.Error("asymmetric profile should error")
	}
}

func TestBestResponseRespectsUndirected(t *testing.T) {
	// In the undirected game a peer whose inbound edges already connect
	// it needs no own links at high α.
	inst, err := NewFabrikant(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	ev := core.NewEvaluator(inst)
	p := core.NewProfile(4)
	_ = p.AddLink(1, 0)
	_ = p.AddLink(2, 0)
	_ = p.AddLink(3, 0)
	res, err := (&bestresponse.Exact{}).BestResponse(ev, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.Count() != 0 {
		t.Errorf("peer 0 should buy nothing (inbound star suffices), got %v", res.Strategy)
	}
}
