package core

// Differential tests for the banded distance store and the multi-source
// bitset BFS (msbfs.go), plus the implicit uniform instance storage.
// The contract is the house invariant, stated bit-for-bit: at EVERY
// band width, on every kernel and regime, the streamed rows and the
// banded social-cost fold must equal the slab path exactly — and an
// instance over the implicit O(1)-storage uniform space must be
// indistinguishable, bit for bit, from one over the dense Uniform
// matrix.

import (
	"math"
	"testing"

	"selfishnet/internal/metric"
	"selfishnet/internal/rng"
)

// bandWidths returns the band widths exercised against an n-peer
// instance: the degenerate band 1, small odd widths, both sides of the
// 64-source word boundary, and full-width (clamped internally).
func bandWidths(n int) []int {
	return []int{1, 2, 3, 63, 64, 65, n, n + 7}
}

// TestSocialCostBandedMatchesSlabBitForBit folds the banded social cost
// at every band width against the slab-path SocialCost, across every
// diff regime (all three kernels, directed/undirected, γ > 0,
// disconnection). Exact struct equality: same Link, same Term bits.
func TestSocialCostBandedMatchesSlabBitForBit(t *testing.T) {
	r := rng.New(53)
	for _, c := range diffCases() {
		t.Run(c.name, func(t *testing.T) {
			inst := buildDiffInstance(t, r, c)
			ev := NewEvaluator(inst)
			p := randomDiffProfile(r, c.n, c.linkProb)
			want := ev.SocialCost(p)
			for _, band := range bandWidths(c.n) {
				got, err := ev.SocialCostBanded(p, band)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("band %d: %+v, slab %+v", band, got, want)
				}
			}
		})
	}
}

// TestSSSPBandsRowsMatchSlabBitForBit checks every streamed row against
// the slab-path ssspFrom row, exactly, at band widths straddling the
// 64-source chunk boundary — the multi-word, disconnected and
// undirected BFS regimes are where the mask bookkeeping could go wrong.
func TestSSSPBandsRowsMatchSlabBitForBit(t *testing.T) {
	r := rng.New(59)
	for _, c := range diffCases() {
		t.Run(c.name, func(t *testing.T) {
			inst := buildDiffInstance(t, r, c)
			evBand := NewEvaluator(inst)
			evSlab := NewEvaluator(inst)
			p := randomDiffProfile(r, c.n, c.linkProb)
			evSlab.prepare(p, -1, Strategy{})
			slab := make([][]float64, c.n)
			for s := 0; s < c.n; s++ {
				slab[s] = append([]float64(nil), evSlab.ssspFrom(s)...)
			}
			for _, band := range bandWidths(c.n) {
				seen := 0
				err := evBand.SSSPBands(p, band, func(src int, d []float64) error {
					if src != seen {
						t.Fatalf("band %d: visited src %d, want %d (order contract)", band, src, seen)
					}
					seen++
					if j, ok := distsIdentical(d, slab[src]); !ok {
						t.Fatalf("band %d src %d: banded d[%d]=%v, slab d[%d]=%v",
							band, src, j, d[j], j, slab[src][j])
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if seen != c.n {
					t.Fatalf("band %d: visited %d sources, want %d", band, seen, c.n)
				}
			}
		})
	}
}

// TestStreamedEvalsMatchBitForBit checks the slab-free single-source
// eval surface — PeerEvalStreamed and DeviationEvalStreamed — against
// PeerEval/DeviationEval exactly, in every regime including overrides
// that disconnect the mover.
func TestStreamedEvalsMatchBitForBit(t *testing.T) {
	r := rng.New(61)
	for _, c := range diffCases() {
		t.Run(c.name, func(t *testing.T) {
			inst := buildDiffInstance(t, r, c)
			evStream := NewEvaluator(inst)
			evSlab := NewEvaluator(inst)
			p := randomDiffProfile(r, c.n, c.linkProb)
			for i := 0; i < c.n; i++ {
				if got, want := evStream.PeerEvalStreamed(p, i), evSlab.PeerEval(p, i); got != want {
					t.Fatalf("PeerEvalStreamed(%d): %+v, want %+v", i, got, want)
				}
			}
			for trial := 0; trial < 4; trial++ {
				i := r.Intn(c.n)
				alt := randomStrategy(r, c.n, i, c.linkProb+0.1)
				got := evStream.DeviationEvalStreamed(p, i, alt)
				want := evSlab.DeviationEval(p, i, alt)
				if got != want {
					t.Fatalf("DeviationEvalStreamed(%d): %+v, want %+v", i, got, want)
				}
				empty := Strategy{}
				if got, want := evStream.DeviationEvalStreamed(p, i, empty), evSlab.DeviationEval(p, i, empty); got != want {
					t.Fatalf("DeviationEvalStreamed(%d, empty): %+v, want %+v", i, got, want)
				}
			}
		})
	}
}

// TestSSSPBandsRejectsInvalidBand pins the band validation.
func TestSSSPBandsRejectsInvalidBand(t *testing.T) {
	r := rng.New(67)
	inst := buildDiffInstance(t, r, diffCase{n: 8, linkProb: 0.3, space: "unit"})
	ev := NewEvaluator(inst)
	p := randomDiffProfile(r, 8, 0.3)
	for _, band := range []int{0, -1} {
		if err := ev.SSSPBands(p, band, func(int, []float64) error { return nil }); err == nil {
			t.Errorf("band %d: expected error", band)
		}
	}
	if _, err := ev.SocialCostBanded(p, 0); err == nil {
		t.Error("SocialCostBanded(0): expected error")
	}
}

// TestImplicitUniformMatchesDenseBitForBit builds twin instances over
// metric.UniformImplicit (O(1) storage, no slab) and metric.Uniform
// (dense matrix) and requires the full evaluation surface to agree
// exactly: kernel dispatch, Distance, peer/deviation evals, social cost
// (slab, banded and streamed), directed and undirected, unit 1 and a
// non-integer unit.
func TestImplicitUniformMatchesDenseBitForBit(t *testing.T) {
	r := rng.New(71)
	for _, tc := range []struct {
		name       string
		n          int
		unit       float64
		undirected bool
	}{
		{name: "directed-unit1", n: 70, unit: 1},
		{name: "undirected-unit1", n: 29, unit: 1, undirected: true},
		{name: "directed-scaled", n: 33, unit: 0.37},
		{name: "word-boundary", n: 64, unit: 1},
		{name: "tiny", n: 2, unit: 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			imp, err := metric.UniformUnit(tc.n, tc.unit)
			if err != nil {
				t.Fatal(err)
			}
			var dense metric.Space
			base, err := metric.Uniform(tc.n)
			if err != nil {
				t.Fatal(err)
			}
			dense = base
			if tc.unit != 1 {
				if dense, err = metric.Scale(base, tc.unit); err != nil {
					t.Fatal(err)
				}
			}
			var opts []Option
			if tc.undirected {
				opts = append(opts, WithUndirected())
			}
			instImp, err := NewInstance(imp, 2.5, opts...)
			if err != nil {
				t.Fatal(err)
			}
			instDense, err := NewInstance(dense, 2.5, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if instImp.dist != nil {
				t.Fatal("implicit instance materialized a slab")
			}
			if got, want := instImp.Kernel(), instDense.Kernel(); got != want {
				t.Fatalf("kernel %q, dense %q", got, want)
			}
			for i := 0; i < tc.n; i++ {
				for j := 0; j < tc.n; j++ {
					if got, want := instImp.Distance(i, j), instDense.Distance(i, j); got != want {
						t.Fatalf("Distance(%d,%d): %v, dense %v", i, j, got, want)
					}
				}
			}
			evImp, evDense := NewEvaluator(instImp), NewEvaluator(instDense)
			p := randomDiffProfile(r, tc.n, 0.1)
			if got, want := evImp.SocialCost(p), evDense.SocialCost(p); got != want {
				t.Fatalf("SocialCost: %+v, dense %+v", got, want)
			}
			for _, band := range bandWidths(tc.n) {
				got, err := evImp.SocialCostBanded(p, band)
				if err != nil {
					t.Fatal(err)
				}
				if want := evDense.SocialCost(p); got != want {
					t.Fatalf("banded(%d): %+v, dense slab %+v", band, got, want)
				}
			}
			for i := 0; i < tc.n; i++ {
				if got, want := evImp.PeerEvalStreamed(p, i), evDense.PeerEval(p, i); got != want {
					t.Fatalf("PeerEvalStreamed(%d): %+v, dense %+v", i, got, want)
				}
			}
			i := r.Intn(tc.n)
			alt := randomStrategy(r, tc.n, i, 0.25)
			if got, want := evImp.DeviationEvalStreamed(p, i, alt), evDense.DeviationEval(p, i, alt); got != want {
				t.Fatalf("DeviationEvalStreamed(%d): %+v, dense %+v", i, got, want)
			}
		})
	}
}

// TestZeroAllocBandedHotPath pins the arena contract for the banded
// fold: once warmed, SocialCostBanded allocates nothing.
func TestZeroAllocBandedHotPath(t *testing.T) {
	r := rng.New(73)
	inst := buildDiffInstance(t, r, diffCase{n: 70, linkProb: 0.1, space: "unit"})
	ev := NewEvaluator(inst)
	p := randomDiffProfile(r, 70, 0.1)
	if _, err := ev.SocialCostBanded(p, 64); err != nil { // warm the arenas
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if _, err := ev.SocialCostBanded(p, 64); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("SocialCostBanded allocates %v per run, want 0", avg)
	}
}

// TestUnitSpaceSelfClassification pins the SelfClassified contract on
// UnitSpace against the scanning classifier, including a unit exactly
// at and just past the small-integer boundary.
func TestUnitSpaceSelfClassification(t *testing.T) {
	for _, unit := range []float64{1, 2, 0.37, metric.MaxSmallIntWeight, metric.MaxSmallIntWeight + 1, 1.5} {
		s, err := metric.UniformUnit(9, unit)
		if err != nil {
			t.Fatal(err)
		}
		declared := s.DistanceClass()
		scanned := metric.ClassifyFunc(s.N(), s.Distance)
		if declared != scanned {
			t.Errorf("unit %v: declared %+v, scanned %+v", unit, declared, scanned)
		}
		if got := metric.Classify(s); got != declared {
			t.Errorf("unit %v: Classify %+v, declared %+v", unit, got, declared)
		}
	}
	if _, err := metric.UniformUnit(1, 1); err == nil {
		t.Error("UniformUnit(1, 1): expected error")
	}
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := metric.UniformUnit(4, bad); err == nil {
			t.Errorf("UniformUnit(4, %v): expected error", bad)
		}
	}
}
