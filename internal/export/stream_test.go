package export

import (
	"bytes"
	"strings"
	"testing"
)

func streamTables() []*Table {
	return []*Table{
		{Title: "a", Headers: []string{"x", "y"}, Rows: [][]string{{"1", "2"}}},
		{Title: "b", Headers: []string{"x"}, Rows: [][]string{{"3"}, {"4"}}, Notes: []string{"n"}},
		{Headers: []string{"only-headers"}},
	}
}

// TestJSONStreamMatchesBuffered pins the byte-compatibility contract:
// streaming table-by-table produces exactly the WriteJSONTables bytes,
// for several element counts including zero.
func TestJSONStreamMatchesBuffered(t *testing.T) {
	all := streamTables()
	for count := 0; count <= len(all); count++ {
		tables := all[:count]
		var want bytes.Buffer
		if err := WriteJSONTables(&want, tables); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		s := NewJSONStream(&got)
		for _, tb := range tables {
			if err := s.Write(tb); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("count %d: stream bytes differ\nstreamed: %q\nbuffered: %q",
				count, got.String(), want.String())
		}
		var got2 bytes.Buffer
		if err := StreamJSONTables(&got2, tables); err != nil {
			t.Fatal(err)
		}
		if got2.String() != want.String() {
			t.Errorf("count %d: StreamJSONTables bytes differ", count)
		}
	}
}

func TestJSONStreamValidation(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONStream(&buf)
	bad := &Table{Headers: []string{"a", "b"}, Rows: [][]string{{"only-one"}}}
	if err := s.Write(bad); err == nil {
		t.Fatal("ragged row should error")
	}
	// The error sticks.
	if err := s.Write(&Table{Headers: []string{"a"}}); err == nil {
		t.Error("write after error should keep failing")
	}
	if err := s.Close(); err == nil {
		t.Error("close after error should return it")
	}
	if s.Err() == nil {
		t.Error("Err() should report the sticky error")
	}
	if strings.Contains(buf.String(), "]") {
		t.Errorf("failed stream must not be terminated as valid JSON: %q", buf.String())
	}
}
