package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"selfishnet/internal/churn"
	"selfishnet/internal/export"
)

// Sweep is a grid of declarative Specs over the axes α, n, seed, γ,
// churn rate, repair strategy and estimator sample budget. Axes left
// empty stay at the base spec's value, so a sweep degrades gracefully
// down to a single point. Grid points are independent specs with
// explicit seeds, so they execute concurrently with tables that are
// byte-identical at every parallelism width: rows are reduced in grid
// order (seed-major, then n, α, γ, churn rate, repair, samples — the
// nesting order of Points).
type Sweep struct {
	// Name titles the result table.
	Name string `json:"name,omitempty"`
	// Description is free-form documentation, echoed as a table note.
	Description string `json:"description,omitempty"`
	// Base is the spec every grid point derives from. It must be
	// declarative: native paper runners produce bespoke tables that do
	// not grid over shared axes.
	Base Spec `json:"base"`
	// Alphas overrides Base.Game.Alpha per point.
	Alphas []float64 `json:"alphas,omitempty"`
	// Ns overrides Base.Metric.N per point (sized families only).
	Ns []int `json:"ns,omitempty"`
	// Seeds overrides Base.Seed per point.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Gammas overrides Base.Game.Gamma per point.
	Gammas []float64 `json:"gammas,omitempty"`
	// ChurnRates overrides Base.Churn.Rate per point; Repairs overrides
	// Base.Churn.Repair. Both require a churn block in the base spec and
	// grid innermost (after γ), so a sweep can ask "does the equilibrium
	// survive churn?" across rate × repair strategy × α in one table.
	ChurnRates []float64 `json:"churn_rates,omitempty"`
	Repairs    []string  `json:"repairs,omitempty"`
	// Samples overrides Base.Estimate.Samples per point. It requires an
	// estimate block in the base spec and grids innermost (after repair),
	// so one table can show est-social converging on the exact value as
	// the sample budget grows.
	Samples []int `json:"samples,omitempty"`
}

// Validate checks the sweep without running anything.
func (sw Sweep) Validate() error {
	if sw.Base.Experiment != "" {
		return fmt.Errorf("scenario: sweep %q: base must be declarative, not experiment %q",
			sw.Name, sw.Base.Experiment)
	}
	if err := sw.Base.Validate(); err != nil {
		return err
	}
	if len(sw.Ns) > 0 && !sw.Base.Metric.Sizeable() {
		return fmt.Errorf("scenario: sweep %q: metric family %q has fixed geometry, cannot sweep n",
			sw.Name, sw.Base.Metric.Family)
	}
	for _, n := range sw.Ns {
		if n < 2 {
			return fmt.Errorf("scenario: sweep %q: n axis value %d < 2", sw.Name, n)
		}
	}
	for _, a := range sw.Alphas {
		if a < 0 {
			return fmt.Errorf("scenario: sweep %q: negative alpha %v", sw.Name, a)
		}
	}
	for _, g := range sw.Gammas {
		if g < 0 {
			return fmt.Errorf("scenario: sweep %q: negative gamma %v", sw.Name, g)
		}
	}
	for _, seed := range sw.Seeds {
		if seed == 0 {
			// 0 would collapse to DefaultSeed and duplicate that grid
			// point; a seeds axis must be explicit.
			return fmt.Errorf("scenario: sweep %q: seed axis value 0 (0 means DefaultSeed %d; list explicit seeds)",
				sw.Name, DefaultSeed)
		}
	}
	if (len(sw.ChurnRates) > 0 || len(sw.Repairs) > 0) && sw.Base.Churn.isZero() {
		return fmt.Errorf("scenario: sweep %q: churn axes need a churn block in the base spec", sw.Name)
	}
	for _, rate := range sw.ChurnRates {
		if rate < 0 {
			return fmt.Errorf("scenario: sweep %q: negative churn rate %v", sw.Name, rate)
		}
	}
	for _, repair := range sw.Repairs {
		if _, err := churn.ParseRepairKind(repair); err != nil {
			return fmt.Errorf("scenario: sweep %q: %w", sw.Name, err)
		}
	}
	if len(sw.Samples) > 0 && sw.Base.Estimate.isZero() {
		return fmt.Errorf("scenario: sweep %q: samples axis needs an estimate block in the base spec", sw.Name)
	}
	for _, k := range sw.Samples {
		if k < 1 {
			return fmt.Errorf("scenario: sweep %q: samples axis value %d < 1", sw.Name, k)
		}
	}
	return nil
}

// Points expands the grid into fully-specified Specs in deterministic
// order: seeds outermost, then n, α, γ. Empty axes contribute the base
// value as a single point.
func (sw Sweep) Points() []Spec {
	seeds := sw.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{sw.Base.Seed}
	}
	type nAxis struct {
		set bool
		n   int
	}
	ns := []nAxis{{}}
	if len(sw.Ns) > 0 {
		ns = ns[:0]
		for _, n := range sw.Ns {
			ns = append(ns, nAxis{set: true, n: n})
		}
	}
	alphas := sw.Alphas
	if len(alphas) == 0 {
		alphas = []float64{sw.Base.Game.Alpha}
	}
	gammas := sw.Gammas
	if len(gammas) == 0 {
		gammas = []float64{sw.Base.Game.Gamma}
	}
	rates := sw.ChurnRates
	if len(rates) == 0 {
		rates = []float64{sw.Base.Churn.Rate}
	}
	repairs := sw.Repairs
	if len(repairs) == 0 {
		repairs = []string{sw.Base.Churn.Repair}
	}
	samples := sw.Samples
	if len(samples) == 0 {
		samples = []int{sw.Base.Estimate.Samples}
	}
	var points []Spec
	for _, seed := range seeds {
		for _, n := range ns {
			for _, alpha := range alphas {
				for _, gamma := range gammas {
					for _, rate := range rates {
						for _, repair := range repairs {
							for _, k := range samples {
								spec := sw.Base
								spec.Seed = seed
								if n.set {
									spec.Metric.N = n.n
								}
								spec.Game.Alpha = alpha
								spec.Game.Gamma = gamma
								spec.Churn.Rate = rate
								spec.Churn.Repair = repair
								spec.Estimate.Samples = k
								points = append(points, spec)
							}
						}
					}
				}
			}
		}
	}
	return points
}

// Point is one grid point of a sweep: its position in grid order, the
// fully-specified Spec, and the spec's canonical content hash
// (Spec.Hash of the point as it would execute). The hash is the dedup
// key the distributed fabric and the persistent result store share:
// two sweeps whose grids overlap produce points with equal hashes, so
// a point executed for one sweep serves the other from the store.
type Point struct {
	Index int    `json:"index"`
	Spec  Spec   `json:"spec"`
	Hash  string `json:"hash"`
}

// EnumeratePoints validates the sweep and expands its grid into hashed
// points in grid order — the Specs Points returns, each paired with
// its canonical hash. Quick mode must already be folded into the base
// spec (as the serve layer does); the hashes then address the points
// exactly as they execute.
func (sw Sweep) EnumeratePoints() ([]Point, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	specs := sw.Points()
	pts := make([]Point, len(specs))
	for i, spec := range specs {
		h, err := spec.Hash()
		if err != nil {
			return nil, err
		}
		pts[i] = Point{Index: i, Spec: spec, Hash: h}
	}
	return pts, nil
}

// Measures returns the measure columns the sweep's rows record — the
// base spec's list, or DefaultMeasures when it names none. The sweep
// engine and the distributed fabric's shard assignments share it, so
// rows rendered anywhere concatenate into the same table.
func (sw Sweep) Measures() []string {
	return append([]string(nil), effectiveMeasures(sw.Base)...)
}

// PointResult is the rendered outcome of one executed grid point: its
// table row under the sweep's measure columns, plus the cut-off flag
// the table footer aggregates. It is the unit of work the distributed
// fabric ships back from workers and stores content-addressed.
type PointResult struct {
	Row            []string `json:"row"`
	NonEquilibrium bool     `json:"non_equilibrium,omitempty"`
}

// RunPoint executes one grid point spec and renders its row under the
// given measure columns (Sweep.Measures of the owning sweep).
// parallelism is the point's internal fan-out width and never changes
// the row. Concatenating RunPoint results in grid order and passing
// them to Assemble reproduces Sweep.Run byte-for-byte — the invariant
// the distributed fabric's reassembly rests on.
func RunPoint(spec Spec, measures []string, parallelism int) (PointResult, error) {
	return RunPointContext(context.Background(), spec, measures, parallelism)
}

// RunPointContext is RunPoint with cooperative cancellation: ctx
// reaches every dynamics step and churn event of the point, so sweep
// cancellation and worker shutdown land mid-point instead of at grid
// boundaries. An unfired context leaves the row byte-identical to
// RunPoint.
func RunPointContext(ctx context.Context, spec Spec, measures []string, parallelism int) (PointResult, error) {
	out, err := runDeclarative(ctx, spec, parallelism)
	if err != nil {
		return PointResult{}, err
	}
	row, err := out.row(measures)
	if err != nil {
		return PointResult{}, err
	}
	return PointResult{Row: row, NonEquilibrium: out.nonEquilibrium}, nil
}

// FailedPoint describes one grid point that could not be executed: its
// grid index, the spec's content hash, the final error, and how many
// attempts were spent before giving up. It is the unit of the
// structured partial-failure report produced by the fabric's
// poison-point quarantine and by keep-going CLI sweeps.
type FailedPoint struct {
	Index    int    `json:"index"`
	Hash     string `json:"hash,omitempty"`
	Error    string `json:"error"`
	Attempts int    `json:"attempts,omitempty"`
}

// FailedCell is the placeholder rendered into every cell of a failed
// point's row in a partial sweep table.
const FailedCell = "error"

// AssemblePartial is Assemble for sweeps where some grid points failed
// permanently: healthy points' rows are reduced exactly as Assemble
// would (byte-identical to the fault-free table's rows), failed
// points' rows are filled with FailedCell placeholders, and the table
// carries a deterministic note per failure — the structured
// partial-failure report in rendered form. An empty failed list
// delegates to Assemble. Failed indexes must be in range and strictly
// increasing (the quarantine report is kept in grid order).
func (sw Sweep) AssemblePartial(results []PointResult, failed []FailedPoint) (*export.Table, error) {
	if len(failed) == 0 {
		return sw.Assemble(results)
	}
	if len(results) != len(sw.Points()) {
		return nil, fmt.Errorf("scenario: sweep %q: %d point result(s) for a %d-point grid",
			sw.Name, len(results), len(sw.Points()))
	}
	headers := specHeaders(effectiveMeasures(sw.Base))
	filled := append([]PointResult(nil), results...)
	prev := -1
	for _, f := range failed {
		if f.Index <= prev || f.Index >= len(filled) {
			return nil, fmt.Errorf("scenario: sweep %q: failed point index %d out of order or range", sw.Name, f.Index)
		}
		prev = f.Index
		row := make([]string, len(headers))
		for i := range row {
			row[i] = FailedCell
		}
		filled[f.Index] = PointResult{Row: row}
	}
	tb, err := sw.Assemble(filled)
	if err != nil {
		return nil, err
	}
	tb.Notes = append(tb.Notes, fmt.Sprintf("partial failure: %d of %d point(s) quarantined; their rows read %q",
		len(failed), len(filled), FailedCell))
	for _, f := range failed {
		note := fmt.Sprintf("point %d failed: %s", f.Index, f.Error)
		if f.Attempts > 0 {
			note += fmt.Sprintf(" (after %d attempt(s))", f.Attempts)
		}
		tb.Notes = append(tb.Notes, note)
	}
	return tb, nil
}

// Assemble reduces per-point results, in grid order, into the sweep's
// result table — exactly the table Run produces when it executes the
// same points itself. Results must be complete (one per grid point, in
// grid order); the fabric coordinator guarantees that by filling an
// index-addressed slice before calling Assemble.
func (sw Sweep) Assemble(results []PointResult) (*export.Table, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	points := sw.Points()
	if len(results) != len(points) {
		return nil, fmt.Errorf("scenario: sweep %q: %d point result(s) for a %d-point grid",
			sw.Name, len(results), len(points))
	}
	measures := effectiveMeasures(sw.Base)
	headers := specHeaders(measures)
	rows := make([][]string, len(results))
	cutOffPoints := 0
	for i, res := range results {
		if len(res.Row) != len(headers) {
			return nil, fmt.Errorf("scenario: sweep %q: point %d row has %d cell(s), want %d",
				sw.Name, i, len(res.Row), len(headers))
		}
		rows[i] = res.Row
		if res.NonEquilibrium {
			cutOffPoints++
		}
	}

	title := sw.Name
	if title == "" {
		title = fmt.Sprintf("sweep over %s", sw.Base.Metric.Family)
	}
	tb := &export.Table{Title: title, Headers: headers, Rows: rows}
	if sw.Description != "" {
		tb.Notes = append(tb.Notes, sw.Description)
	}
	axes := "seeds×n×α×γ"
	if len(sw.ChurnRates) > 0 || len(sw.Repairs) > 0 {
		axes += "×churn-rate×repair"
	}
	if len(sw.Samples) > 0 {
		axes += "×samples"
	}
	tb.Notes = append(tb.Notes, fmt.Sprintf("grid: %d points (%s), rows in grid order", len(points), axes))
	if cutOffPoints > 0 {
		tb.Notes = append(tb.Notes, fmt.Sprintf("%d point(s): %s", cutOffPoints, nonEquilibriumNote))
	}
	return tb, nil
}

// Run executes every grid point and reduces the rows, in grid order,
// into one table. parallelism bounds concurrent grid points (0 = all
// cores, 1 = sequential); each point's internal replica fan-out gets
// the remaining budget, and the table is byte-identical at any width.
// Params.Seed is ignored (the seed axis owns seeding); Params.Quick
// trims every point.
func (sw Sweep) Run(p Params, parallelism int) (*export.Table, error) {
	return sw.RunContext(context.Background(), p, parallelism, nil)
}

// RunContext is Run with cooperative cancellation and progress
// reporting, the entry point of the serve layer's async sweep jobs.
// ctx is checked between grid points and threaded into each point
// (RunPointContext), so cancellation lands mid-point: in-flight points
// abort at their next dynamics step and the error is ctx.Err().
// progress, when non-nil, is called after each completed point with
// the number of finished points and the grid size; calls are
// serialized, arrive in completion order (not grid order), and all
// workers are joined before RunContext returns — no call fires after
// it returns, even on cancellation. Neither ctx nor progress affects
// the result table: a run that completes is byte-identical to Run at
// any parallelism width.
func (sw Sweep) RunContext(ctx context.Context, p Params, parallelism int, progress func(done, total int)) (*export.Table, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	points := sw.Points()
	measures := effectiveMeasures(sw.Base)
	// Grid points get the worker goroutines; each point's internal
	// replica fan-out gets the remaining budget (one point keeps the
	// whole width, many points on few cores run replicas sequentially).
	workers, inner := splitBudget(parallelism, len(points), p.Parallelism)

	results := make([]PointResult, len(points))
	errs := make([]error, len(points))
	var progressMu sync.Mutex
	finished := 0
	complete := forEachIndexCtx(ctx, len(points), workers, func(i int) {
		spec := points[i]
		if p.Quick {
			spec.Quick = true
		}
		results[i], errs[i] = RunPointContext(ctx, spec, measures, inner)
		if errs[i] != nil {
			return
		}
		if progress != nil {
			// Count inside the critical section so reported progress is
			// monotone: increment-then-lock would let a slower worker
			// report a smaller count after a faster one.
			progressMu.Lock()
			finished++
			progress(finished, len(points))
			progressMu.Unlock()
		}
	})
	if !complete {
		return nil, fmt.Errorf("scenario: sweep %q: %w", sw.Name, ctx.Err())
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario: sweep point %d: %w", i, err)
		}
	}
	return sw.Assemble(results)
}

// RunPartialContext is RunContext with keep-going semantics: a grid
// point that fails to execute no longer aborts the sweep — its row is
// rendered as FailedCell placeholders and reported in the returned
// FailedPoint list (grid order, single attempt each), while healthy
// points' rows stay byte-identical to a fault-free run. The error
// return covers sweep-level problems only (validation, cancellation,
// assembly); a fully healthy run returns an empty failure list.
func (sw Sweep) RunPartialContext(ctx context.Context, p Params, parallelism int, progress func(done, total int)) (*export.Table, []FailedPoint, error) {
	if err := sw.Validate(); err != nil {
		return nil, nil, err
	}
	points := sw.Points()
	measures := effectiveMeasures(sw.Base)
	workers, inner := splitBudget(parallelism, len(points), p.Parallelism)

	results := make([]PointResult, len(points))
	errs := make([]error, len(points))
	var progressMu sync.Mutex
	finished := 0
	complete := forEachIndexCtx(ctx, len(points), workers, func(i int) {
		spec := points[i]
		if p.Quick {
			spec.Quick = true
		}
		results[i], errs[i] = RunPointContext(ctx, spec, measures, inner)
		if progress != nil {
			progressMu.Lock()
			finished++
			progress(finished, len(points))
			progressMu.Unlock()
		}
	})
	if !complete {
		return nil, nil, fmt.Errorf("scenario: sweep %q: %w", sw.Name, ctx.Err())
	}
	if err := ctx.Err(); err != nil {
		// Cancellation that lands mid-point after every index was
		// claimed: report it as cancellation, not as quarantined points.
		return nil, nil, fmt.Errorf("scenario: sweep %q: %w", sw.Name, err)
	}
	var failed []FailedPoint
	for i, err := range errs {
		if err == nil {
			continue
		}
		hash, herr := points[i].Hash()
		if herr != nil {
			hash = ""
		}
		failed = append(failed, FailedPoint{Index: i, Hash: hash, Error: err.Error(), Attempts: 1})
	}
	table, err := sw.AssemblePartial(results, failed)
	if err != nil {
		return nil, nil, err
	}
	return table, failed, nil
}

// ReadSweep decodes a Sweep from JSON, rejecting unknown fields.
func ReadSweep(r io.Reader) (Sweep, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sw Sweep
	if err := dec.Decode(&sw); err != nil {
		return Sweep{}, fmt.Errorf("scenario: decoding sweep: %w", err)
	}
	if err := sw.Validate(); err != nil {
		return Sweep{}, err
	}
	return sw, nil
}

// WriteJSON encodes the sweep with indentation.
func (sw Sweep) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sw)
}
