// Package metric models the latency spaces underlying the peer topology
// game. Peers are points in a metric space M = (V, d); the distance
// function d gives the direct (network-level) latency between two peers,
// and the game's stretch is the ratio of overlay routing distance to d.
//
// The package provides Euclidean point sets of any dimension, explicit
// distance matrices, the paper's constructions (the exponentially spaced
// line of Figure 1, clustered instances for Figure 2), random generators,
// and validators for the metric axioms.
package metric

import (
	"errors"
	"fmt"
	"math"
)

// Space is a finite metric space over peers indexed 0..N()-1.
//
// Implementations must satisfy the metric axioms for distinct indices:
// positivity (d(i,j) > 0 for i ≠ j), symmetry, identity (d(i,i) = 0) and
// the triangle inequality. Validate checks them explicitly.
type Space interface {
	// N returns the number of points.
	N() int
	// Distance returns d(i, j). Implementations may panic on
	// out-of-range indices; callers index within [0, N()).
	Distance(i, j int) float64
}

// Positioned is implemented by spaces whose points have geometric
// coordinates, enabling visual export.
type Positioned interface {
	Space
	// Position returns the coordinates of point i. The returned slice
	// must not be modified.
	Position(i int) []float64
}

// Points is a Euclidean point set of uniform dimension. It implements
// Space and Positioned.
type Points struct {
	pts [][]float64
}

var (
	_ Space      = (*Points)(nil)
	_ Positioned = (*Points)(nil)
)

// NewPoints builds a Euclidean space from coordinate rows. All rows must
// have the same non-zero dimension, and points must be pairwise distinct
// (zero distances would make stretch undefined).
func NewPoints(pts [][]float64) (*Points, error) {
	if len(pts) == 0 {
		return nil, errors.New("metric: empty point set")
	}
	dim := len(pts[0])
	if dim == 0 {
		return nil, errors.New("metric: zero-dimensional points")
	}
	cp := make([][]float64, len(pts))
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("metric: point %d has dimension %d, want %d", i, len(p), dim)
		}
		cp[i] = append([]float64(nil), p...)
	}
	s := &Points{pts: cp}
	for i := 0; i < s.N(); i++ {
		for j := i + 1; j < s.N(); j++ {
			if s.Distance(i, j) == 0 {
				return nil, fmt.Errorf("metric: points %d and %d coincide", i, j)
			}
		}
	}
	return s, nil
}

// Line builds a 1-D Euclidean space from positions on the real line.
func Line(positions []float64) (*Points, error) {
	pts := make([][]float64, len(positions))
	for i, x := range positions {
		pts[i] = []float64{x}
	}
	return NewPoints(pts)
}

// N returns the number of points.
func (s *Points) N() int { return len(s.pts) }

// Distance returns the Euclidean distance between points i and j.
func (s *Points) Distance(i, j int) float64 {
	a, b := s.pts[i], s.pts[j]
	sum := 0.0
	for k := range a {
		d := a[k] - b[k]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Position returns the coordinates of point i.
func (s *Points) Position(i int) []float64 { return s.pts[i] }

// Dim returns the dimension of the point set.
func (s *Points) Dim() int { return len(s.pts[0]) }

// Matrix is a metric given by an explicit symmetric distance matrix.
type Matrix struct {
	d [][]float64
}

var _ Space = (*Matrix)(nil)

// NewMatrix builds a space from an explicit distance matrix. The matrix
// must be square with zero diagonal, symmetric, positive off-diagonal
// entries; the triangle inequality is checked too, so construction is
// O(n³). Use NewMatrixUnchecked for pre-validated data.
func NewMatrix(d [][]float64) (*Matrix, error) {
	m, err := NewMatrixUnchecked(d)
	if err != nil {
		return nil, err
	}
	if err := Validate(m); err != nil {
		return nil, err
	}
	return m, nil
}

// NewMatrixUnchecked builds a matrix space verifying only the shape
// (square, zero diagonal), not the metric axioms.
func NewMatrixUnchecked(d [][]float64) (*Matrix, error) {
	if len(d) == 0 {
		return nil, errors.New("metric: empty matrix")
	}
	cp := make([][]float64, len(d))
	for i, row := range d {
		if len(row) != len(d) {
			return nil, fmt.Errorf("metric: row %d has %d entries, want %d", i, len(row), len(d))
		}
		if row[i] != 0 {
			return nil, fmt.Errorf("metric: nonzero diagonal at %d", i)
		}
		cp[i] = append([]float64(nil), row...)
	}
	return &Matrix{d: cp}, nil
}

// FromSpace materializes any space into an explicit matrix (useful for
// caching expensive Distance implementations).
func FromSpace(s Space) *Matrix {
	n := s.N()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = s.Distance(i, j)
			}
		}
	}
	return &Matrix{d: d}
}

// N returns the number of points.
func (m *Matrix) N() int { return len(m.d) }

// Distance returns the matrix entry d[i][j].
func (m *Matrix) Distance(i, j int) float64 { return m.d[i][j] }

// Validate checks the metric axioms: zero diagonal, symmetry, positive
// off-diagonal distances, and the triangle inequality (within a small
// relative tolerance to absorb floating-point error). O(n³).
func Validate(s Space) error {
	n := s.N()
	if n == 0 {
		return errors.New("metric: empty space")
	}
	const tol = 1e-9
	for i := 0; i < n; i++ {
		if d := s.Distance(i, i); d != 0 {
			return fmt.Errorf("metric: d(%d,%d) = %v, want 0", i, i, d)
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dij := s.Distance(i, j)
			if dij <= 0 || math.IsNaN(dij) || math.IsInf(dij, 0) {
				return fmt.Errorf("metric: d(%d,%d) = %v, want finite positive", i, j, dij)
			}
			if dji := s.Distance(j, i); math.Abs(dij-dji) > tol*math.Max(1, dij) {
				return fmt.Errorf("metric: asymmetric d(%d,%d)=%v vs d(%d,%d)=%v", i, j, dij, j, i, dji)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dij := s.Distance(i, j)
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				viaK := s.Distance(i, k) + s.Distance(k, j)
				if dij > viaK*(1+tol) {
					return fmt.Errorf("metric: triangle inequality violated: d(%d,%d)=%v > d(%d,%d)+d(%d,%d)=%v",
						i, j, dij, i, k, k, j, viaK)
				}
			}
		}
	}
	return nil
}

// Scale returns a new matrix space with every distance multiplied by c.
// Scaling preserves all stretches, so game outcomes are invariant; it is
// useful for normalizing instances. c must be positive.
func Scale(s Space, c float64) (*Matrix, error) {
	if c <= 0 {
		return nil, fmt.Errorf("metric: scale factor %v must be positive", c)
	}
	m := FromSpace(s)
	for i := range m.d {
		for j := range m.d[i] {
			m.d[i][j] *= c
		}
	}
	return m, nil
}

// DoublingConstant estimates the doubling constant of the space: the
// maximum, over points i and radii r (taken from the distance set), of
// the number of balls of radius r/2 needed to cover the ball B(i, r),
// computed with a greedy cover. The doubling dimension is log2 of this.
// The paper's upper bound holds for arbitrary metrics including doubling
// ones; this lets experiments report where an instance sits.
func DoublingConstant(s Space) int {
	n := s.N()
	maxCover := 1
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r := s.Distance(i, j)
			// Collect members of B(i, r).
			var ball []int
			for k := 0; k < n; k++ {
				if s.Distance(i, k) <= r {
					ball = append(ball, k)
				}
			}
			// Greedy cover by balls of radius r/2.
			covered := make(map[int]bool, len(ball))
			count := 0
			for len(covered) < len(ball) {
				// Pick the uncovered point covering the most uncovered points.
				best, bestGain := -1, -1
				for _, c := range ball {
					if covered[c] {
						continue
					}
					gain := 0
					for _, q := range ball {
						if !covered[q] && s.Distance(c, q) <= r/2 {
							gain++
						}
					}
					if gain > bestGain {
						best, bestGain = c, gain
					}
				}
				for _, q := range ball {
					if !covered[q] && s.Distance(best, q) <= r/2 {
						covered[q] = true
					}
				}
				count++
			}
			if count > maxCover {
				maxCover = count
			}
		}
	}
	return maxCover
}

// Uniform returns the uniform metric on n points: every pair at
// distance 1. This is the hop-count world of the Fabrikant et al.
// network-creation game, where overlay distance equals hop count.
func Uniform(n int) (*Matrix, error) {
	if n < 2 {
		return nil, fmt.Errorf("metric: uniform metric needs n ≥ 2, got %d", n)
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = 1
			}
		}
	}
	return &Matrix{d: d}, nil
}

// UnitSpace is the uniform metric stored implicitly: every off-diagonal
// distance equals one common unit, held in O(1) memory regardless of n.
// It is the internet-scale counterpart of Uniform — a dense Uniform(n)
// matrix costs n² float64s (2 GiB at n = 16384), while a UnitSpace costs
// two words at any n. UnitSpace self-classifies (SelfClassified), so the
// game core can skip its O(n²) distance materialization and
// classification scans entirely and serve the instance from a shared
// unit row plus the word-parallel BFS kernels.
type UnitSpace struct {
	n    int
	unit float64
}

var (
	_ Space          = (*UnitSpace)(nil)
	_ SelfClassified = (*UnitSpace)(nil)
)

// UniformImplicit returns the uniform metric on n points (every pair at
// distance 1) in O(1) storage. It is semantically identical to
// Uniform(n): instances built over either report the same distances,
// classify identically and evaluate bit-for-bit equally; only the
// memory footprint differs.
func UniformImplicit(n int) (*UnitSpace, error) { return UniformUnit(n, 1) }

// UniformUnit returns the uniform metric on n points with every pair at
// the given positive finite distance, in O(1) storage.
func UniformUnit(n int, unit float64) (*UnitSpace, error) {
	if n < 2 {
		return nil, fmt.Errorf("metric: uniform metric needs n ≥ 2, got %d", n)
	}
	if unit <= 0 || math.IsNaN(unit) || math.IsInf(unit, 0) {
		return nil, fmt.Errorf("metric: uniform unit %v, want finite positive", unit)
	}
	return &UnitSpace{n: n, unit: unit}, nil
}

// N returns the number of points.
func (s *UnitSpace) N() int { return s.n }

// Distance returns 0 on the diagonal and the common unit off it.
func (s *UnitSpace) Distance(i, j int) float64 {
	if i == j {
		return 0
	}
	return s.unit
}

// Unit returns the common off-diagonal distance.
func (s *UnitSpace) Unit() float64 { return s.unit }

// DistanceClass declares the space's class without a scan: uniform at
// the common unit, integer-valued when the unit is a positive integer
// no larger than MaxSmallIntWeight — exactly what ClassifyFunc would
// compute from the distances (pinned by the FuzzClassify target).
func (s *UnitSpace) DistanceClass() ClassInfo {
	info := ClassInfo{Kind: ClassUniform, Unit: s.unit}
	if s.unit == math.Trunc(s.unit) && s.unit <= MaxSmallIntWeight {
		info.IntegerValued = true
		info.MaxWeight = int(s.unit)
	}
	return info
}

// Spread returns the ratio of the largest to the smallest pairwise
// distance, a standard difficulty measure for locality-aware overlays.
func Spread(s Space) float64 {
	n := s.N()
	if n < 2 {
		return 1
	}
	minD, maxD := math.Inf(1), 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := s.Distance(i, j)
			minD = math.Min(minD, d)
			maxD = math.Max(maxD, d)
		}
	}
	return maxD / minD
}
