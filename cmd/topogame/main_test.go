package main

import (
	"bytes"
	"io"
	"os"
	"testing"
)

func TestTopogameCommands(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Errorf("list: %v", err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
	if err := run(nil); err == nil {
		t.Error("missing command should error")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown command should error")
	}
	if err := run([]string{"run"}); err == nil {
		t.Error("run without ids should error")
	}
	if err := run([]string{"run", "not-an-experiment"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestTopogameRunQuick(t *testing.T) {
	// One representative experiment in quick+CSV mode (stdout goes to
	// the test log, which is fine).
	if err := run([]string{"run", "-quick", "-csv", "e4-poa"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"run", "-quick", "-seed", "9", "e2-fig1", "e3-cost"}); err != nil {
		t.Fatalf("multi run: %v", err)
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns everything written.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	rp, wp, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wp
	defer func() { os.Stdout = old }()
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(rp)
		done <- b
	}()
	errRun := fn()
	wp.Close()
	out := <-done
	os.Stdout = old
	if errRun != nil {
		t.Fatal(errRun)
	}
	return out
}

// TestTopogameParOutputIdentical asserts the CLI-level determinism
// guarantee: `run -par 1` and `run -par 8` print byte-identical output.
func TestTopogameParOutputIdentical(t *testing.T) {
	args := []string{"run", "-quick", "-csv", "-seed", "3", "e2-fig1", "e4-poa", "e6-cycle", "e8-dyn"}
	seq := captureStdout(t, func() error { return run(append([]string{args[0], "-par", "1"}, args[1:]...)) })
	par := captureStdout(t, func() error { return run(append([]string{args[0], "-par", "8"}, args[1:]...)) })
	if len(seq) == 0 {
		t.Fatal("no output captured")
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("-par 1 and -par 8 outputs differ (%d vs %d bytes)", len(seq), len(par))
	}
}
