package scenario

import (
	"context"
	"fmt"
	"strconv"

	"selfishnet/internal/analysis"
	"selfishnet/internal/churn"
	"selfishnet/internal/core"
	"selfishnet/internal/dynamics"
	"selfishnet/internal/export"
	"selfishnet/internal/nash"
	"selfishnet/internal/opt"
	"selfishnet/internal/rng"
)

// nonEquilibriumNote warns that a single dynamics run hit its step
// budget: the profile measures then describe the final (cut-off)
// profile, not an equilibrium.
const nonEquilibriumNote = "single run did not converge: profile measures report the final (non-equilibrium) profile"

// DefaultMeasures are the columns recorded when a spec lists none.
var DefaultMeasures = []string{
	"converged", "mean-steps", "links", "social-cost", "max-stretch", "c-over-lb",
}

// measureNames lists every measure the engine can record, in canonical
// order. Run measures summarize the dynamics replicas; profile measures
// evaluate the selected final profile (the worst converged equilibrium
// for multi-replica runs, the Price-of-Anarchy convention).
var measureNames = []string{
	"runs", "converged", "cycles", "mean-steps",
	"social-cost", "link-cost", "stretch-cost", "c-over-lb",
	"links", "max-stretch", "mean-stretch",
	"nash", "max-indegree", "degree-gini",
	"churn-rate", "churn-repair", "churn-events",
	"restabilize-mean", "restabilize-max", "overshoot", "tail-stable",
	"est-social", "est-social-ci", "est-stretch", "est-stretch-ci", "est-samples",
}

// churnMeasure reports whether the measure reads the churn phase and
// therefore requires a churn block in the spec.
func churnMeasure(name string) bool {
	switch name {
	case "churn-rate", "churn-repair", "churn-events",
		"restabilize-mean", "restabilize-max", "overshoot", "tail-stable":
		return true
	}
	return false
}

// estimateMeasure reports whether the measure reads the sampled
// estimators and therefore requires an estimate block in the spec.
func estimateMeasure(name string) bool {
	switch name {
	case "est-social", "est-social-ci", "est-stretch", "est-stretch-ci", "est-samples":
		return true
	}
	return false
}

// MeasureNames returns the known measure names in canonical order.
func MeasureNames() []string {
	return append([]string(nil), measureNames...)
}

// KnownMeasure reports whether name is a measure the engine records.
func KnownMeasure(name string) bool {
	for _, m := range measureNames {
		if m == name {
			return true
		}
	}
	return false
}

// outcome is the engine's view of one executed declarative spec, with
// lazy caches so each expensive quantity is computed at most once no
// matter how many measures reference it.
type outcome struct {
	// ctx carries the request's cancellation into the lazily executed
	// phases (the churn run fires at measure-render time, after
	// runDeclarative returned). Always non-nil; Background when the
	// caller has no deadline.
	ctx     context.Context
	spec    Spec
	seed    uint64
	inst    *core.Instance
	ev      *core.Evaluator
	results []dynamics.Result
	// chosen is the profile the profile-valued measures evaluate: the
	// single run's final for Runs ≤ 1, else the worst converged
	// equilibrium in replica order. chosenOK is false when no replica
	// converged in multi-replica mode. nonEquilibrium flags a single
	// run that did not converge, so tables can warn that the profile
	// measures describe a cut-off state rather than an equilibrium.
	chosen         core.Profile
	chosenOK       bool
	nonEquilibrium bool

	social *core.Cost
	stats  *analysis.TopologyStats

	// estSocial/estStretch cache the sampled estimators (one run each no
	// matter how many est-* measures read them), seeded by the spec seed.
	estSocial  *core.Estimate
	estStretch *core.Estimate

	// churnWorkers sizes the churn run's evaluator pool (wall-clock
	// only); churnRes/churnErr cache the single churn.Run execution.
	churnWorkers int
	churnRes     *churn.Result
	churnErr     error
}

func (o *outcome) socialCost() core.Cost {
	if o.social == nil {
		c := o.ev.SocialCost(o.chosen)
		o.social = &c
	}
	return *o.social
}

// churnResult lazily executes the spec's churn phase on the chosen
// profile: one churn.Run per outcome no matter how many churn measures
// read it, seeded by the spec seed (deterministic at any pool width).
func (o *outcome) churnResult() (churn.Result, error) {
	if o.churnRes == nil && o.churnErr == nil {
		kind := churn.RepairSelfish
		if o.spec.Churn.Repair != "" {
			var err error
			if kind, err = churn.ParseRepairKind(o.spec.Churn.Repair); err != nil {
				o.churnErr = err
				return churn.Result{}, err
			}
		}
		res, err := churn.RunContext(o.ctx, churn.Config{
			Instance:    o.inst,
			Start:       o.chosen,
			Rate:        o.spec.Churn.Rate,
			Duration:    o.spec.Churn.Duration,
			Repair:      kind,
			MinOnline:   o.spec.Churn.MinOnline,
			RepairSteps: o.spec.Churn.RepairSteps,
			TailSteps:   o.spec.Churn.TailSteps,
			Seed:        o.seed,
			Workers:     o.churnWorkers,
		})
		if err != nil {
			o.churnErr = err
			return churn.Result{}, err
		}
		o.churnRes = &res
	}
	if o.churnErr != nil {
		return churn.Result{}, o.churnErr
	}
	return *o.churnRes, nil
}

// estSocialResult lazily computes the sampled social-cost estimate on
// the chosen profile with the spec's sample budget and seed.
func (o *outcome) estSocialResult() (core.Estimate, error) {
	if o.estSocial == nil {
		est, err := o.ev.EstimateSocialCost(o.chosen, o.spec.Estimate.Samples, o.seed)
		if err != nil {
			return core.Estimate{}, err
		}
		o.estSocial = &est
	}
	return *o.estSocial, nil
}

// estStretchResult lazily computes the landmark mean-term estimate on
// the chosen profile. The landmark seed is offset from the spec seed so
// the two estimators never share a source sample by construction.
func (o *outcome) estStretchResult() (core.Estimate, error) {
	if o.estStretch == nil {
		est, err := o.ev.EstimateMeanTerm(o.chosen, o.spec.Estimate.Landmarks, o.seed+1)
		if err != nil {
			return core.Estimate{}, err
		}
		o.estStretch = &est
	}
	return *o.estStretch, nil
}

func (o *outcome) topoStats() (analysis.TopologyStats, error) {
	if o.stats == nil {
		st, err := analysis.Analyze(o.ev, o.chosen)
		if err != nil {
			return analysis.TopologyStats{}, err
		}
		o.stats = &st
	}
	return *o.stats, nil
}

// runDeclarative executes a validated declarative spec. parallelism is
// the internal replica fan-out width (0 = all cores); it never changes
// the outcome, only wall-clock.
//
// The spec is normalized first (Spec.Normalize), so defaulting lives in
// exactly one place and a spec executes identically to its canonical
// form — the invariant the serve layer's content-addressed cache rests
// on.
func runDeclarative(ctx context.Context, spec Spec, parallelism int) (*outcome, error) {
	spec = spec.Normalize()
	seed := spec.Seed
	r := rng.New(seed)
	inst, err := spec.Instance(r)
	if err != nil {
		return nil, err
	}
	ev := core.NewEvaluator(inst)

	runs := spec.Dynamics.Runs
	maxSteps := spec.Dynamics.MaxSteps
	policy, err := PolicyByName(spec.Dynamics.Policy)
	if err != nil {
		return nil, err
	}
	oracle, err := OracleByName(spec.Dynamics.Oracle)
	if err != nil {
		return nil, err
	}
	forceFresh, forceIncremental, err := engineFlags(spec.Dynamics.Engine)
	if err != nil {
		return nil, err
	}
	batchWorkers := spec.Dynamics.BatchWorkers
	if batchWorkers == 0 && parallelism > 0 {
		// The engine splits the core budget between concurrent grid
		// points / experiment ids and their internals (splitBudget); an
		// auto batch pool must stay inside this run's share instead of
		// claiming all cores on top of the point-level fan-out. With an
		// unconstrained budget (parallelism ≤ 0) auto stays auto.
		batchWorkers = parallelism
	}
	cfg := dynamics.Config{
		Oracle:           oracle,
		Policy:           policy,
		Tol:              spec.Dynamics.Tol,
		MaxSteps:         maxSteps,
		DetectCycles:     spec.Dynamics.DetectCycles,
		Parallelism:      parallelism,
		BatchWorkers:     batchWorkers,
		ForceFresh:       forceFresh,
		ForceIncremental: forceIncremental,
	}

	out := &outcome{ctx: ctx, spec: spec, seed: seed, inst: inst, ev: ev, churnWorkers: parallelism}
	if runs == 1 {
		start, err := spec.Start.Build(inst.N(), r)
		if err != nil {
			return nil, err
		}
		cfg.Rand = r.Split()
		res, err := dynamics.RunContext(ctx, ev, start, cfg)
		if err != nil {
			return nil, err
		}
		out.results = []dynamics.Result{res}
		out.chosen = res.Final
		out.chosenOK = true
		out.nonEquilibrium = !res.Converged
		return out, nil
	}

	// Replica mode: Start is ignored; runs start from random profiles of
	// density LinkProb (made explicit by Normalize), exactly like the
	// Converge/WorstEquilibrium drivers (bit-identical at every
	// parallelism width).
	results, err := dynamics.ReplicasContext(ctx, ev, cfg, runs, spec.Dynamics.LinkProb, r)
	if err != nil {
		return nil, err
	}
	out.results = results
	if worst, cost, _, ok := dynamics.WorstConverged(ev, results); ok {
		out.chosen = worst
		out.chosenOK = true
		out.social = &cost // cache: the cost measures reuse it
	}
	return out, nil
}

// measureCell renders one measure of an executed spec as a table cell.
// Profile measures render "-" when no replica converged.
func (o *outcome) measureCell(name string) (string, error) {
	switch name {
	case "runs":
		return export.Int(len(o.results)), nil
	case "converged":
		n := 0
		for _, res := range o.results {
			if res.Converged {
				n++
			}
		}
		return export.Int(n), nil
	case "cycles":
		n := 0
		for _, res := range o.results {
			if res.CycleDetected {
				n++
			}
		}
		return export.Int(n), nil
	case "mean-steps":
		sum, n := 0, 0
		for _, res := range o.results {
			if res.Converged {
				sum += res.Steps
				n++
			}
		}
		if n == 0 {
			return "-", nil
		}
		return export.Num(float64(sum) / float64(n)), nil
	}
	// Everything below evaluates the chosen profile.
	if !o.chosenOK {
		return "-", nil
	}
	switch name {
	case "social-cost":
		return export.Num(o.socialCost().Total()), nil
	case "link-cost":
		return export.Num(o.socialCost().Link), nil
	case "stretch-cost":
		return export.Num(o.socialCost().Term), nil
	case "c-over-lb":
		return export.Num(o.socialCost().Total() / opt.LowerBound(o.inst)), nil
	case "links":
		return export.Int(o.chosen.LinkCount()), nil
	case "max-stretch":
		return export.Num(o.ev.MaxTerm(o.chosen)), nil
	case "mean-stretch":
		st, err := o.topoStats()
		if err != nil {
			return "", err
		}
		return export.Num(st.Stretch.Mean), nil
	case "nash":
		ok, err := nash.IsNash(o.ev, o.chosen)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%v", ok), nil
	case "max-indegree":
		st, err := o.topoStats()
		if err != nil {
			return "", err
		}
		return export.Num(st.InDegree.Max), nil
	case "degree-gini":
		st, err := o.topoStats()
		if err != nil {
			return "", err
		}
		return export.Num(st.DegreeGini), nil
	case "churn-rate":
		// Echo measures make sweep rows self-describing when the grid
		// spans churn rates or repair strategies.
		return export.Num(o.spec.Churn.Rate), nil
	case "churn-repair":
		if o.spec.Churn.Repair == "" {
			return churn.RepairSelfish.String(), nil
		}
		return o.spec.Churn.Repair, nil
	case "churn-events":
		cr, err := o.churnResult()
		if err != nil {
			return "", err
		}
		return export.Int(cr.Events), nil
	case "restabilize-mean":
		cr, err := o.churnResult()
		if err != nil {
			return "", err
		}
		if cr.Restabilize.N() == 0 {
			return "-", nil
		}
		return export.Num(cr.Restabilize.Mean()), nil
	case "restabilize-max":
		cr, err := o.churnResult()
		if err != nil {
			return "", err
		}
		if cr.Restabilize.N() == 0 {
			return "-", nil
		}
		return export.Num(cr.Restabilize.Max()), nil
	case "overshoot":
		cr, err := o.churnResult()
		if err != nil {
			return "", err
		}
		if cr.Overshoot.N() == 0 {
			return "-", nil
		}
		return export.Num(cr.Overshoot.Mean()), nil
	case "tail-stable":
		cr, err := o.churnResult()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%v", cr.TailStable), nil
	case "est-social":
		est, err := o.estSocialResult()
		if err != nil {
			return "", err
		}
		return export.Num(est.Value), nil
	case "est-social-ci":
		est, err := o.estSocialResult()
		if err != nil {
			return "", err
		}
		return export.Num(est.CI), nil
	case "est-stretch":
		est, err := o.estStretchResult()
		if err != nil {
			return "", err
		}
		return export.Num(est.Value), nil
	case "est-stretch-ci":
		est, err := o.estStretchResult()
		if err != nil {
			return "", err
		}
		return export.Num(est.CI), nil
	case "est-samples":
		est, err := o.estSocialResult()
		if err != nil {
			return "", err
		}
		return export.Int(est.Samples), nil
	default:
		return "", fmt.Errorf("scenario: unknown measure %q", name)
	}
}

// effectiveMeasures returns the spec's measure list or the default.
func effectiveMeasures(spec Spec) []string {
	if len(spec.Measures) > 0 {
		return spec.Measures
	}
	return DefaultMeasures
}

// specHeaders are the identity columns prepended to every declarative
// table: they make each row self-describing, and sweeps grid over them.
func specHeaders(measures []string) []string {
	return append([]string{"n", "alpha", "gamma", "seed"}, measures...)
}

// row renders the outcome as one table row under specHeaders.
func (o *outcome) row(measures []string) ([]string, error) {
	cells := []string{
		export.Int(o.inst.N()),
		export.Num(o.spec.Game.Alpha),
		export.Num(o.spec.Game.Gamma),
		strconv.FormatUint(o.seed, 10),
	}
	for _, m := range measures {
		cell, err := o.measureCell(m)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// RunSpec executes a spec and renders its table: a native experiment
// spec routes to the registered runner, a declarative spec runs through
// the generic engine and produces a one-row table. Params.Seed (when
// non-zero) and Params.Quick override the spec's own fields;
// Params.Parallelism is the internal fan-out width and never changes
// results.
func RunSpec(spec Spec, p Params) (*export.Table, error) {
	return RunSpecContext(context.Background(), spec, p)
}

// RunSpecContext is RunSpec with cooperative cancellation: ctx reaches
// every dynamics step and churn event of a declarative spec, so a
// deadline or client disconnect aborts the evaluation mid-run and the
// returned error unwraps to ctx.Err(). A context that never fires
// leaves the rendered table byte-identical to RunSpec (the house `==`
// convention — pinned by TestRunSpecContextUnfiredByteIdentical).
// Native experiment runners do not take a context; they only observe a
// pre-cancelled ctx before dispatch.
func RunSpecContext(ctx context.Context, spec Spec, p Params) (*export.Table, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	eff := spec
	if p.Seed != 0 {
		eff.Seed = p.Seed
	}
	if p.Quick {
		eff.Quick = true
	}
	if eff.Experiment != "" {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		native, err := nativeRunner(eff.Experiment)
		if err != nil {
			return nil, err
		}
		return native(Params{Seed: eff.Seed, Quick: eff.Quick, Parallelism: p.Parallelism})
	}
	out, err := runDeclarative(ctx, eff, p.Parallelism)
	if err != nil {
		return nil, err
	}
	measures := effectiveMeasures(eff)
	title := eff.Name
	if title == "" {
		title = fmt.Sprintf("scenario: %s n=%d α=%v", eff.Metric.Family, eff.Metric.PeerCount(), eff.Game.Alpha)
	}
	tb := &export.Table{Title: title, Headers: specHeaders(measures)}
	row, err := out.row(measures)
	if err != nil {
		return nil, err
	}
	tb.Rows = append(tb.Rows, row)
	if eff.Description != "" {
		tb.Notes = append(tb.Notes, eff.Description)
	}
	if out.nonEquilibrium {
		tb.Notes = append(tb.Notes, nonEquilibriumNote)
	}
	return tb, nil
}
