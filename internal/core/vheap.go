package core

// vertexHeap is an indexed binary min-heap of (vertex, distance)
// entries supporting decrease-key in place, so a Dijkstra run pops each
// vertex exactly once — the pop count drops from the number of
// relaxations (lazy deletion) to n, which is what makes the profile
// SSSP fast on the moderately dense overlays the experiments produce.
// Priorities are embedded in the entries, keeping sift comparisons on
// sequential memory instead of chasing indices into the distance array.
//
// pos[v] is the heap index of vertex v plus one, or 0 when v is absent.
type vertexHeap struct {
	items []heapEntry
	pos   []int32
}

type heapEntry struct {
	v int32
	d float64
}

// reset prepares the heap for a run over n vertices, keeping capacity.
func (h *vertexHeap) reset(n int) {
	h.items = h.items[:0]
	if cap(h.pos) < n {
		h.pos = make([]int32, n)
	}
	h.pos = h.pos[:n]
	for i := range h.pos {
		h.pos[i] = 0
	}
}

// fix inserts v at distance d, or sifts it up after a decrease-key.
func (h *vertexHeap) fix(v int32, d float64) {
	i := h.pos[v] - 1
	if i < 0 {
		h.items = append(h.items, heapEntry{})
		i = int32(len(h.items) - 1)
	}
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].d <= d {
			break
		}
		h.items[i] = h.items[p]
		h.pos[h.items[i].v] = i + 1
		i = p
	}
	h.items[i] = heapEntry{v: v, d: d}
	h.pos[v] = i + 1
}

// popMin removes and returns the entry with the smallest distance. It
// must not be called on an empty heap.
func (h *vertexHeap) popMin() (int32, float64) {
	top := h.items[0]
	h.pos[top.v] = 0
	last := int32(len(h.items) - 1)
	fill := h.items[last] // hole-filling candidate
	h.items = h.items[:last]
	if last == 0 {
		return top.v, top.d
	}
	i := int32(0)
	for {
		c := 2*i + 1
		if c >= last {
			break
		}
		if c+1 < last && h.items[c+1].d < h.items[c].d {
			c++
		}
		if h.items[c].d >= fill.d {
			break
		}
		h.items[i] = h.items[c]
		h.pos[h.items[i].v] = i + 1
		i = c
	}
	h.items[i] = fill
	h.pos[fill.v] = i + 1
	return top.v, top.d
}

// empty reports whether the heap has no entries.
func (h *vertexHeap) empty() bool { return len(h.items) == 0 }
